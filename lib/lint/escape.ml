(* The cross-module call/escape graph.

   The per-file rules of PR 4 are lexical: they can say "this line
   reads the wall clock" but not "this line runs on a worker domain".
   This module closes that gap without a typing pass:

   - every top-level (and nested-module) [let] binding in the analysed
     files becomes a node, carrying the identifier paths its body
     references;
   - nodes are module-qualified using the owning dune library's
     [(name ...)] (wrapped libraries: [lib/net/packet.ml] is
     [Net.Packet], [lib/core/fairness.ml] is [Rla.Fairness]);
   - "runs on a worker domain" is rooted at every [Domain.spawn] and at
     every closure handed to [Job.create]/[Job.pure] (those closures
     are executed by [Runner.Pool] workers).  A lambda argument becomes
     its own synthetic root node; an identifier argument roots the
     binding it resolves to; anything unresolvable conservatively roots
     the enclosing binding;
   - reachability is propagated over resolved references, so a rule
     fires on [Domain.spawn worker] → [helper] → [shared ref] even
     though no single file shows the chain.

   Soundness caveats (documented in DESIGN.md §11): resolution is
   purely syntactic, so closures smuggled through record fields,
   functors or first-class modules are invisible, and unresolvable
   references are dropped rather than widened.  The pass
   under-approximates reachability but never mistakes module-qualified
   code for something else, which is the right trade-off for a linter
   that must stay quiet on clean code. *)

open Parsetree

type reference = { parts : string list; ref_line : int }

type root_kind = Spawn of int | Job_closure of int | Spawn_target

type node = {
  file : string;
  path : string;  (* dotted binding path inside the file, e.g. "Pool.release" *)
  prefix : string;  (* enclosing nested-module prefix, "" or "Pool." *)
  line : int;
  refs : reference list;
  unsafe : (string * int) list;  (* deny-listed ambient ident, call line *)
  mutable_kind : string option;  (* Some "ref cell" etc. for mutable bindings *)
  mutable root : root_kind option;
}

type t = {
  nodes : node list;  (* files in sorted order, source order within a file *)
  by_id : (string, node) Hashtbl.t;  (* "<file>#<path>" *)
  module_files : (string, string) Hashtbl.t;  (* "Net.Packet" -> file *)
  module_id_of_file : (string, string) Hashtbl.t;
}

let node_id n = n.file ^ "#" ^ n.path

(* --- dune library discovery ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Pull [(name x)] out of the first [(library ...)] stanza, tolerating
   arbitrary whitespace.  The repo's dune files are plain enough that a
   full sexp parser would be ceremony. *)
let library_name_of_dune text =
  let len = String.length text in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let rec find_kw kw i =
    if i >= len then None
    else if text.[i] = '(' then begin
      let j = ref (i + 1) in
      while !j < len && is_ws text.[!j] do incr j done;
      let k = String.length kw in
      if !j + k <= len && String.sub text !j k = kw
         && (!j + k = len || is_ws text.[!j + k] || text.[!j + k] = ')')
      then Some (!j + k)
      else find_kw kw (i + 1)
    end
    else find_kw kw (i + 1)
  in
  match find_kw "library" 0 with
  | None -> None
  | Some after_lib -> (
      match find_kw "name" after_lib with
      | None -> None
      | Some after_name ->
          let i = ref after_name in
          while !i < len && is_ws text.[!i] do incr i done;
          let start = !i in
          while !i < len && not (is_ws text.[!i]) && text.[!i] <> ')' do
            incr i
          done;
          if !i > start then Some (String.sub text start (!i - start))
          else None)

let module_of_basename file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let module_id_for ~dune_cache file =
  let dir = Filename.dirname file in
  let libname =
    match Hashtbl.find_opt dune_cache dir with
    | Some v -> v
    | None ->
        let v =
          let dune = Filename.concat dir "dune" in
          if Sys.file_exists dune then
            match library_name_of_dune (read_file dune) with
            | Some name -> Some (String.capitalize_ascii name)
            | None -> None
          else None
        in
        Hashtbl.add dune_cache dir v;
        v
  in
  match libname with
  | Some lib -> lib ^ "." ^ module_of_basename file
  | None -> module_of_basename file

(* --- parsetree extraction ------------------------------------------- *)

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let rec longident_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> longident_parts p @ [ s ]
  | Longident.Lapply (p, _) -> longident_parts p

let joined lid = String.concat "." (longident_parts lid)

let bare_print_names =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "stdout"; "stderr";
  ]

let format_ambient =
  [
    "printf"; "eprintf"; "std_formatter"; "err_formatter"; "print_string";
    "print_newline"; "print_flush";
  ]

(* Idents whose target is ambient process-global state that two domains
   must not touch concurrently. *)
let unsafe_ident parts =
  match parts with
  | [ "Format"; f ] when List.mem f format_ambient ->
      Some (String.concat "." parts)
  | [ "Printf"; f ] when f = "printf" || f = "eprintf" ->
      Some (String.concat "." parts)
  | [ f ] when List.mem f bare_print_names -> Some f
  | [ "Stdlib"; f ] when List.mem f bare_print_names ->
      Some (String.concat "." parts)
  | "Random" :: f :: _ when f <> "State" -> Some (String.concat "." parts)
  | _ -> None

let is_spawn_head e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match joined txt with
      | "Domain.spawn" -> Some `Spawn
      | j
        when j = "Job.create" || j = "Job.pure"
             || j = "Runner.Job.create" || j = "Runner.Job.pure" ->
          Some `Job
      | _ -> None)
  | _ -> None

type extraction = {
  mutable x_refs : reference list;
  mutable x_unsafe : (string * int) list;
  (* idents handed to Domain.spawn / Job.create: resolve later *)
  mutable x_spawn_idents : (string list * int) list;
  (* lambdas handed to Domain.spawn / Job.create *)
  mutable x_closures : (int * extraction * [ `Spawn | `Job ]) list;
  (* a non-ident, non-lambda spawn argument: root the enclosing binding *)
  mutable x_conservative : bool;
}

let fresh () =
  {
    x_refs = [];
    x_unsafe = [];
    x_spawn_idents = [];
    x_closures = [];
    x_conservative = false;
  }

let rec extract_expr acc e =
  let record_ident lid loc =
    let parts = longident_parts lid in
    acc.x_refs <- { parts; ref_line = line_of loc } :: acc.x_refs;
    match unsafe_ident parts with
    | Some name -> acc.x_unsafe <- (name, line_of loc) :: acc.x_unsafe
    | None -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              record_ident txt loc;
              Ast_iterator.default_iterator.expr it e
          | Pexp_apply (head, args) when is_spawn_head head <> None ->
              let kind =
                match is_spawn_head head with
                | Some k -> k
                | None -> assert false
              in
              List.iter
                (fun (label, arg) ->
                  match (label, arg.pexp_desc) with
                  (* Labelled arguments ([~label], optional args) are
                     coordinator-side data, not the worker body. *)
                  | (Asttypes.Labelled _ | Asttypes.Optional _), _ ->
                      Ast_iterator.default_iterator.expr it arg
                  | Asttypes.Nolabel, (Pexp_fun _ | Pexp_function _) ->
                      let inner = fresh () in
                      extract_expr inner arg;
                      acc.x_closures <-
                        (line_of arg.pexp_loc, inner, kind) :: acc.x_closures
                  | Asttypes.Nolabel, Pexp_ident { txt; loc } ->
                      record_ident txt loc;
                      acc.x_spawn_idents <-
                        (longident_parts txt, line_of loc)
                        :: acc.x_spawn_idents
                  | Asttypes.Nolabel, Pexp_constant _ -> ()
                  | Asttypes.Nolabel, _ ->
                      acc.x_conservative <- true;
                      Ast_iterator.default_iterator.expr it arg)
                args;
              (* the head ident itself *)
              Ast_iterator.default_iterator.expr it head
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  iterator.expr iterator e

(* --- module-level mutable-binding detection ------------------------- *)

(* Label-name sets of every record type (in this file) that declares a
   [mutable] field; a top-level record literal is mutable state exactly
   when its field names fit one of these, so files that mix immutable
   config records with mutable state records do not over-flag. *)
let rec mutable_label_sets items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.filter_map
            (fun d ->
              match d.ptype_kind with
              | Ptype_record labels
                when List.exists
                       (fun l -> l.pld_mutable = Asttypes.Mutable)
                       labels ->
                  Some
                    (List.sort String.compare
                       (List.map (fun l -> l.pld_name.Asttypes.txt) labels))
              | _ -> None)
            decls
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ }
        ->
          mutable_label_sets inner
      | _ -> [])
    items

let mutable_kind_of ~mutable_labels expr =
  match expr.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match joined txt with
      | "ref" -> Some "ref cell"
      | "Hashtbl.create" -> Some "Hashtbl"
      | "Buffer.create" -> Some "Buffer"
      | "Queue.create" -> Some "Queue"
      | "Stack.create" -> Some "Stack"
      | "Bytes.create" | "Bytes.make" -> Some "Bytes"
      | "Array.make" | "Array.init" | "Array.create_float" -> Some "array"
      | _ -> None)
  | Pexp_record (fields, _) ->
      let names =
        List.filter_map
          (fun ({ Asttypes.txt; _ }, _) ->
            match List.rev (longident_parts txt) with
            | last :: _ -> Some last
            | [] -> None)
          fields
      in
      if
        List.exists
          (fun labels -> List.for_all (fun n -> List.mem n labels) names)
          mutable_labels
      then Some "mutable record"
      else None
  | _ -> None

(* --- per-file node extraction --------------------------------------- *)

let nodes_of_structure ~file items =
  let mutable_labels = mutable_label_sets items in
  let out = ref [] in
  let rec go prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                    let acc = fresh () in
                    extract_expr acc vb.pvb_expr;
                    let path = prefix ^ txt in
                    let base_line = line_of vb.pvb_loc in
                    let node =
                      {
                        file;
                        path;
                        prefix;
                        line = base_line;
                        refs = List.rev acc.x_refs;
                        unsafe = List.rev acc.x_unsafe;
                        mutable_kind =
                          mutable_kind_of ~mutable_labels vb.pvb_expr;
                        root = (if acc.x_conservative then Some Spawn_target
                                else None);
                      }
                    in
                    out := (node, acc) :: !out;
                    (* Lambdas handed to Domain.spawn/Job become their
                       own root nodes: only what the closure references
                       runs on the worker, not the whole enclosing
                       binding. *)
                    List.iter
                      (fun (cl_line, inner, kind) ->
                        let synth =
                          {
                            file;
                            path =
                              Printf.sprintf "%s.<closure@%d>" path cl_line;
                            prefix;
                            line = cl_line;
                            refs = List.rev inner.x_refs;
                            unsafe = List.rev inner.x_unsafe;
                            mutable_kind = None;
                            root =
                              Some
                                (match kind with
                                | `Spawn -> Spawn cl_line
                                | `Job -> Job_closure cl_line);
                          }
                        in
                        out := (synth, inner) :: !out)
                      acc.x_closures
                | _ -> ())
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some name; _ };
              pmb_expr = { pmod_desc = Pmod_structure inner; _ };
              _;
            } ->
            go (prefix ^ name ^ ".") inner
        | _ -> ())
      items
  in
  go "" items;
  List.rev !out

(* --- graph construction --------------------------------------------- *)

let build files =
  let files = List.sort (fun (a, _) (b, _) -> String.compare a b) files in
  let dune_cache = Hashtbl.create 16 in
  let module_files = Hashtbl.create 64 in
  let module_id_of_file = Hashtbl.create 64 in
  List.iter
    (fun (file, _) ->
      let mid = module_id_for ~dune_cache file in
      Hashtbl.replace module_id_of_file file mid;
      (* First definition wins on a collision; collisions only happen
         between unrelated executables, which nothing references. *)
      if not (Hashtbl.mem module_files mid) then
        Hashtbl.add module_files mid file)
    files;
  let with_acc =
    List.concat_map (fun (file, ast) -> nodes_of_structure ~file ast) files
  in
  let nodes = List.map fst with_acc in
  let by_id = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace by_id (node_id n) n) nodes;
  let defs_of_file = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt defs_of_file n.file)
      in
      Hashtbl.replace defs_of_file n.file (n.path :: existing))
    nodes;
  let lookup_binding file rest =
    (* Longest dotted prefix of [rest] that is a binding in [file]:
       [Pool.release.foo] still resolves to [Pool.release]. *)
    let rec try_len k =
      if k = 0 then None
      else
        let cand =
          String.concat "." (List.filteri (fun i _ -> i < k) rest)
        in
        match Hashtbl.find_opt by_id (file ^ "#" ^ cand) with
        | Some n -> Some n
        | None -> try_len (k - 1)
    in
    try_len (List.length rest)
  in
  let graph = { nodes; by_id; module_files; module_id_of_file } in
  let resolve (from : node) (r : reference) =
    let parts = r.parts in
    let capitalized s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' in
    let as_module_path () =
      match parts with
      | m0 :: m1 :: (_ :: _ as rest) when capitalized m0 && capitalized m1
        -> (
          match Hashtbl.find_opt module_files (m0 ^ "." ^ m1) with
          | Some file -> lookup_binding file rest
          | None -> None)
      | _ -> None
    in
    let as_sibling () =
      match parts with
      | m0 :: (_ :: _ as rest) when capitalized m0 -> (
          let sibling =
            Filename.concat (Filename.dirname from.file)
              (String.uncapitalize_ascii m0 ^ ".ml")
          in
          match Hashtbl.find_opt defs_of_file sibling with
          | Some _ -> lookup_binding sibling rest
          | None -> None)
      | _ -> None
    in
    let in_own_file () =
      (* Inside nested module [Pool], a bare [grow] means [Pool.grow]
         before it means a top-level [grow]. *)
      let qualified =
        if from.prefix = "" then None
        else
          lookup_binding from.file
            (String.split_on_char '.' (from.prefix ^ String.concat "." parts))
      in
      match qualified with
      | Some _ as hit -> hit
      | None -> lookup_binding from.file parts
    in
    match as_module_path () with
    | Some _ as hit -> hit
    | None -> (
        match as_sibling () with
        | Some _ as hit -> hit
        | None -> in_own_file ())
  in
  (* Root the targets of [Domain.spawn some_function]; if the ident is
     a local binding the resolver cannot see, fall back to rooting the
     enclosing binding — the worker body is somewhere inside it. *)
  List.iter
    (fun (n, acc) ->
      List.iter
        (fun (parts, line) ->
          match resolve n { parts; ref_line = line } with
          | Some target ->
              if target.root = None then target.root <- Some Spawn_target
          | None -> if n.root = None then n.root <- Some (Spawn line))
        acc.x_spawn_idents)
    with_acc;
  (graph, resolve)

type built = {
  graph : t;
  resolve : node -> reference -> node option;
  reachable : (string, string list) Hashtbl.t;
      (* node id -> chain of display names from the root, inclusive *)
}

let display g n =
  let mid =
    Option.value
      ~default:(module_of_basename n.file)
      (Hashtbl.find_opt g.module_id_of_file n.file)
  in
  mid ^ "." ^ n.path

let analyse files =
  let graph, resolve = build files in
  let reachable = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      if n.root <> None && not (Hashtbl.mem reachable (node_id n)) then begin
        Hashtbl.replace reachable (node_id n) [ display graph n ];
        Queue.add n queue
      end)
    graph.nodes;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    let chain = Hashtbl.find reachable (node_id n) in
    let targets =
      List.filter_map (fun r -> resolve n r) n.refs
      |> List.map (fun t -> (node_id t, t))
      |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter
      (fun (id, t) ->
        if not (Hashtbl.mem reachable id) then begin
          Hashtbl.replace reachable id (chain @ [ display graph t ]);
          Queue.add t queue
        end)
      targets
  done;
  { graph; resolve; reachable }

(* --- rules on top of the graph -------------------------------------- *)

let chain_string chain = String.concat " -> " chain

let shared_mutable_capture b =
  List.filter_map
    (fun m ->
      match m.mutable_kind with
      | None -> None
      | Some kind ->
          (* First worker-reachable node (in deterministic node order)
             whose references resolve to this binding. *)
          let toucher =
            List.find_opt
              (fun n ->
                Hashtbl.mem b.reachable (node_id n)
                && List.exists
                     (fun r ->
                       match b.resolve n r with
                       | Some t -> node_id t = node_id m
                       | None -> false)
                     n.refs)
              b.graph.nodes
          in
          Option.map
            (fun (n : node) ->
              let chain = Hashtbl.find b.reachable (node_id n) in
              Finding.make ~file:m.file ~line:m.line
                ~rule:"shared-mutable-capture"
                ~severity:(Rules.severity_of "shared-mutable-capture")
                (Printf.sprintf
                   "module-level %s %s is touched by worker-domain code \
                    (%s); make it Atomic, guard it with a Mutex, or move \
                    it into per-shard state"
                   kind
                   (display b.graph m)
                   (chain_string chain)))
            toucher)
    b.graph.nodes

let domain_unsafe_call b =
  List.concat_map
    (fun n ->
      match Hashtbl.find_opt b.reachable (node_id n) with
      | None -> []
      | Some chain ->
          List.map
            (fun (name, line) ->
              Finding.make ~file:n.file ~line ~rule:"domain-unsafe-call"
                ~severity:(Rules.severity_of "domain-unsafe-call")
                (Printf.sprintf
                   "%s reaches ambient %s from a worker domain (%s); \
                    ambient process state is not domain-safe"
                   (display b.graph n) name (chain_string chain)))
            n.unsafe)
    b.graph.nodes

let check files =
  let b = analyse files in
  shared_mutable_capture b @ domain_unsafe_call b

(* --- graph dump (rla_lint --graph) ---------------------------------- *)

let dump files =
  let b = analyse files in
  let buf = Buffer.create 4096 in
  let roots =
    List.filter (fun n -> n.root <> None) b.graph.nodes
  in
  let reach_count =
    List.length
      (List.filter (fun n -> Hashtbl.mem b.reachable (node_id n)) b.graph.nodes)
  in
  Buffer.add_string buf
    (Printf.sprintf "escape graph: %d nodes, %d roots, %d worker-reachable\n"
       (List.length b.graph.nodes) (List.length roots) reach_count);
  List.iter
    (fun n ->
      let mark =
        match n.root with
        | Some (Spawn l) -> Printf.sprintf " [root: Domain.spawn@%d]" l
        | Some (Job_closure l) -> Printf.sprintf " [root: Job closure@%d]" l
        | Some Spawn_target -> " [root: spawn target]"
        | None -> if Hashtbl.mem b.reachable (node_id n) then " [reachable]"
                  else ""
      in
      let edges =
        List.filter_map (fun r -> b.resolve n r) n.refs
        |> List.map (display b.graph)
        |> List.sort_uniq String.compare
      in
      Buffer.add_string buf
        (Printf.sprintf "%s (%s:%d)%s\n" (display b.graph n) n.file n.line
           mark);
      List.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf "  -> %s\n" e))
        edges)
    b.graph.nodes;
  Buffer.contents buf
