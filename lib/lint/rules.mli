(** The determinism-rule registry: names, summaries, scopes and default
    severities for every check the linter knows. *)

type scope = All | Dirs of string list

type t = {
  name : string;
  summary : string;
  scope : scope;
  severity : Finding.severity;
}

val all : t list

val find : string -> t option

val names : string list

val always_on : string list
(** Rules that stay enabled even under [--rules]: [bad-annotation] and
    [parse-error], the linter's own integrity checks. *)

val severity_of : string -> Finding.severity
(** Default severity for a rule name; [Error] for unknown names. *)

val in_scope : t -> lib_subdir:string option -> bool
(** Whether a rule applies to a file living under [lib/<subdir>]
    ([None] = outside lib/, where every rule applies). *)
