(** The determinism-rule registry: names, summaries, scopes and default
    severities for every check the linter knows. *)

type scope = All | Dirs of string list
(** [Dirs] entries are scope keys: ["lib/<sub>"] for library
    sub-directories, or a bare top-level tree name (["bin"], ["bench"],
    ["test"], ["examples"]). *)

type t = {
  name : string;
  summary : string;
  scope : scope;
  severity : Finding.severity;
}

val all : t list

val find : string -> t option

val names : string list

val always_on : string list
(** Rules that stay enabled even under [--rules]: [bad-annotation] and
    [parse-error], the linter's own integrity checks. *)

val severity_of : string -> Finding.severity
(** Default severity for a rule name; [Error] for unknown names. *)

val in_scope : t -> scope_key:string option -> bool
(** Whether a rule applies to a file with the given scope key
    ([None] = no recognizable tree, e.g. a bare fixture path, where
    every rule applies). *)
