(* Orchestration: expand targets, parse each source once, run the
   per-file, project-shape and cross-module (escape graph, alloc-hot)
   checks, filter by rule scope and --rules, apply suppression
   annotations, and render text, JSON or SARIF. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_impl ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception e -> Error (Printexc.to_string e)

let parse_interface path =
  match read_file path with
  | text -> (
      let lexbuf = Lexing.from_string text in
      Location.init lexbuf path;
      match Parse.interface lexbuf with
      | sg -> Ok sg
      | exception e -> Error (Printexc.to_string e))
  | exception Sys_error e -> Error e

(* --- file discovery ------------------------------------------------- *)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name.[0] = '_' then acc
           else walk acc (Filename.concat path name))
         acc
  else if is_source path then path :: acc
  else acc

let expand_targets paths =
  List.concat_map
    (fun p ->
      if not (Sys.file_exists p) then
        invalid_arg (Printf.sprintf "rla_lint: no such file or directory: %s" p)
      else List.rev (walk [] p))
    paths

let strip_trailing_slash p =
  let n = String.length p in
  if n > 1 && p.[n - 1] = '/' then String.sub p 0 (n - 1) else p

(* A file's scope key places it for Rules.in_scope: "lib/<sub>" for
   library code, the tree name for bin/bench/test/examples, None for
   anything else (fixtures passed by bare relative path check against
   every rule).  A lib component wins over a tree name so fixture
   layouts like [scoped/lib/obs/...] keep their library scoping. *)
let scope_key path =
  let components = String.split_on_char '/' path in
  let rec lib_of = function
    | "lib" :: next :: _ -> Some ("lib/" ^ next)
    | _ :: tl -> lib_of tl
    | [] -> None
  in
  match lib_of components with
  | Some k -> Some k
  | None ->
      List.find_opt
        (fun c ->
          List.exists (String.equal c) [ "bin"; "bench"; "test"; "examples" ])
        components

(* --- rule selection ------------------------------------------------- *)

let resolve_rules = function
  | None -> Rules.names
  | Some requested ->
      List.iter
        (fun r ->
          if not (List.exists (String.equal r) Rules.names) then
            invalid_arg
              (Printf.sprintf "rla_lint: unknown rule %S (see --list-rules)" r))
        requested;
      requested @ Rules.always_on

let keep_finding ~enabled (f : Finding.t) =
  List.exists (String.equal f.Finding.rule) enabled
  &&
  match Rules.find f.Finding.rule with
  | None -> true
  | Some rule -> Rules.in_scope rule ~scope_key:(scope_key f.Finding.file)

(* --- unused-export target detection -------------------------------- *)

let immediate_subdirs dir =
  Sys.readdir dir |> Array.to_list
  |> List.sort String.compare
  |> List.filter_map (fun name ->
         let p = Filename.concat dir name in
         if name <> "" && name.[0] <> '.' && name.[0] <> '_'
            && Sys.is_directory p
         then Some p
         else None)

let unused_export_inputs paths =
  List.filter_map
    (fun p ->
      let p = strip_trailing_slash p in
      if
        Sys.file_exists p
        && Sys.is_directory p
        && String.equal (Filename.basename p) "lib"
      then
        let root = Filename.dirname p in
        let search_roots =
          p
          :: List.filter Sys.file_exists
               (List.map (Filename.concat root)
                  [ "bin"; "test"; "bench"; "examples" ])
        in
        let search_files =
          List.concat_map (fun r -> List.rev (walk [] r)) search_roots
        in
        let lib_dirs =
          List.map
            (fun sub ->
              ( sub,
                List.filter (fun f -> Filename.check_suffix f ".mli")
                  (List.rev (walk [] sub)) ))
            (immediate_subdirs p)
        in
        Some (lib_dirs, search_files)
      else None)
    paths

(* --- shared parse pass ---------------------------------------------- *)

type parsed = {
  ml_files : string list;
  asts : (string * Parsetree.structure) list;  (* files that parsed *)
  parse_failures : Finding.t list;
  annots_by_file : (string * Annot.t list) list;
  hots_by_file : (string * Annot.hot list) list;
  annot_findings : Finding.t list;
}

let parse_everything paths =
  let files = expand_targets paths in
  let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  (* Annotations (and malformed-annotation findings) come from every
     source file, .mli included, so unused-export can be waived in the
     interface that declares the value. *)
  let annots_by_file, hots_by_file, annot_findings =
    List.fold_left
      (fun (tbl, hots, findings) file ->
        match read_file file with
        | text ->
            let annots, hot, bad =
              Annot.collect ~file ~valid_rules:Rules.names text
            in
            ((file, annots) :: tbl, (file, hot) :: hots, bad @ findings)
        | exception Sys_error e ->
            ( tbl,
              hots,
              Finding.make ~file ~line:1 ~rule:"parse-error"
                ~severity:Finding.Error e
              :: findings ))
      ([], [], []) files
  in
  let asts, parse_failures =
    List.fold_left
      (fun (asts, failures) file ->
        match read_file file with
        | exception Sys_error e ->
            ( asts,
              Finding.make ~file ~line:1 ~rule:"parse-error"
                ~severity:Finding.Error e
              :: failures )
        | text -> (
            match parse_impl ~path:file text with
            | Ok ast -> ((file, ast) :: asts, failures)
            | Error msg ->
                ( asts,
                  Finding.make ~file ~line:1 ~rule:"parse-error"
                    ~severity:Finding.Error msg
                  :: failures )))
      ([], []) ml_files
  in
  {
    ml_files;
    asts = List.rev asts;
    parse_failures;
    annots_by_file;
    hots_by_file;
    annot_findings;
  }

(* --- main entry ----------------------------------------------------- *)

let run ?rules ~paths () =
  let enabled = resolve_rules rules in
  let on r = List.exists (String.equal r) enabled in
  let p = parse_everything paths in
  let ast_findings =
    List.concat_map (fun (file, ast) -> Ast_check.check_impl ~file ast) p.asts
  in
  let parse_impl_file file =
    match List.assoc_opt file p.asts with
    | Some ast -> Ok ast
    | None -> Error "parse failure"
  in
  let project_findings =
    Project_check.mli_required ~ml_files:p.ml_files
    @ Project_check.ckpt_coverage ~parse_impl:parse_impl_file ~parse_interface
        ~ml_files:p.ml_files
    @ List.concat_map
        (fun (lib_dirs, search_files) ->
          Project_check.unused_export ~parse_interface ~lib_dirs ~search_files)
        (unused_export_inputs paths)
  in
  let escape_findings =
    if on "shared-mutable-capture" || on "domain-unsafe-call" then
      Escape.check p.asts
    else []
  in
  let hot_findings =
    if on "alloc-hot" || on "hot-coverage" then
      List.concat_map
        (fun (file, ast) ->
          match List.assoc_opt file p.hots_by_file with
          | None | Some [] -> []
          | Some hots ->
              let mli = Filename.remove_extension file ^ ".mli" in
              let interface =
                if Sys.file_exists mli then
                  match parse_interface mli with
                  | Ok sg -> Some sg
                  | Error _ -> None
                else None
              in
              Hot_check.check ~file ~hots ~interface ast)
        p.asts
    else []
  in
  let suppressed (f : Finding.t) =
    match List.assoc_opt f.Finding.file p.annots_by_file with
    | None -> false
    | Some annots -> List.exists (fun a -> Annot.suppresses a f) annots
  in
  p.annot_findings @ p.parse_failures @ ast_findings @ project_findings
  @ escape_findings @ hot_findings
  |> List.filter (fun f -> keep_finding ~enabled f && not (suppressed f))
  |> List.sort_uniq Finding.compare

let escape_graph ~paths () =
  let p = parse_everything paths in
  Escape.dump p.asts

let hot_annotations ~paths () =
  let p = parse_everything paths in
  List.concat_map
    (fun (file, hots) ->
      List.map (fun (h : Annot.hot) -> (file, h.Annot.target)) hots)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) p.hots_by_file)

(* --- rendering ------------------------------------------------------ *)

let render_text findings =
  String.concat "" (List.map (fun f -> Finding.to_string f ^ "\n") findings)

let count sev findings =
  List.length (List.filter (fun f -> f.Finding.severity = sev) findings)

let to_json findings =
  Json.Obj
    [
      ("tool", Json.String "rla_lint");
      ( "findings",
        Json.List
          (List.map
             (fun (f : Finding.t) ->
               Json.Obj
                 [
                   ("file", Json.String f.Finding.file);
                   ("line", Json.Int f.Finding.line);
                   ("col", Json.Int f.Finding.col);
                   ("rule", Json.String f.Finding.rule);
                   ( "severity",
                     Json.String (Finding.severity_to_string f.Finding.severity)
                   );
                   ("message", Json.String f.Finding.message);
                 ])
             findings) );
      ("errors", Json.Int (count Finding.Error findings));
      ("warnings", Json.Int (count Finding.Warning findings));
    ]

(* Minimal SARIF 2.1.0: one run, the rule table from the registry, one
   result per finding.  Enough for code-scanning UIs to ingest. *)
let to_sarif findings =
  let level (f : Finding.t) =
    match f.Finding.severity with
    | Finding.Error -> "error"
    | Finding.Warning -> "warning"
  in
  Json.Obj
    [
      ("version", Json.String "2.1.0");
      ( "$schema",
        Json.String
          "https://json.schemastore.org/sarif-2.1.0.json" );
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "rla_lint");
                            ( "rules",
                              Json.List
                                (List.map
                                   (fun (r : Rules.t) ->
                                     Json.Obj
                                       [
                                         ("id", Json.String r.Rules.name);
                                         ( "shortDescription",
                                           Json.Obj
                                             [
                                               ( "text",
                                                 Json.String r.Rules.summary );
                                             ] );
                                       ])
                                   Rules.all) );
                          ] );
                    ] );
                ( "results",
                  Json.List
                    (List.map
                       (fun (f : Finding.t) ->
                         Json.Obj
                           [
                             ("ruleId", Json.String f.Finding.rule);
                             ("level", Json.String (level f));
                             ( "message",
                               Json.Obj
                                 [ ("text", Json.String f.Finding.message) ]
                             );
                             ( "locations",
                               Json.List
                                 [
                                   Json.Obj
                                     [
                                       ( "physicalLocation",
                                         Json.Obj
                                           [
                                             ( "artifactLocation",
                                               Json.Obj
                                                 [
                                                   ( "uri",
                                                     Json.String
                                                       f.Finding.file );
                                                 ] );
                                             ( "region",
                                               Json.Obj
                                                 [
                                                   ( "startLine",
                                                     Json.Int f.Finding.line
                                                   );
                                                   ( "startColumn",
                                                     Json.Int
                                                       (max 1 f.Finding.col)
                                                   );
                                                 ] );
                                           ] );
                                     ];
                                 ] );
                           ])
                       findings) );
              ];
          ] );
    ]

let of_json json =
  let open Json in
  let field name f obj =
    match member name obj with
    | Some v -> f v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let string_of = function
    | String s -> Ok s
    | _ -> Error "expected string"
  in
  let int_of = function Int i -> Ok i | _ -> Error "expected int" in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  match member "findings" json with
  | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* file = field "file" string_of item in
            let* line = field "line" int_of item in
            let* col = field "col" int_of item in
            let* rule = field "rule" string_of item in
            let* sev_s = field "severity" string_of item in
            let* message = field "message" string_of item in
            let* severity =
              match Finding.severity_of_string sev_s with
              | Some s -> Ok s
              | None -> Error (Printf.sprintf "bad severity %S" sev_s)
            in
            go (Finding.make ~file ~line ~col ~rule ~severity message :: acc)
              rest
      in
      go [] items
  | Some _ -> Error "findings is not a list"
  | None -> Error "missing field \"findings\""

let exit_code ?(strict = false) findings =
  let errors = count Finding.Error findings in
  let warnings = count Finding.Warning findings in
  if errors > 0 || (strict && warnings > 0) then 1 else 0
