(** Project-shape checks: interface coverage and dead exported API. *)

val mli_required : ml_files:string list -> Finding.t list
(** One [mli-required] finding per .ml without a sibling .mli.  Files
    under bin/, bench/ or examples/ components are exempt (executable
    roots). *)

val unused_export :
  parse_interface:(string -> (Parsetree.signature, string) result) ->
  lib_dirs:(string * string list) list ->
  search_files:string list ->
  Finding.t list
(** [unused_export ~parse_interface ~lib_dirs ~search_files] reports an
    advisory [unused-export] warning for every value declared in one of
    a library's .mli files ([lib_dirs] maps a library directory to its
    .mli paths) that is never referenced, as a [Module.value] token,
    in any of [search_files] outside that library directory. *)
