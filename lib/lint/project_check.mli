(** Project-shape checks: interface coverage and dead exported API. *)

val mli_required : ml_files:string list -> Finding.t list
(** One [mli-required] finding per .ml without a sibling .mli.  Files
    under bin/, bench/ or examples/ components are exempt (executable
    roots). *)

val ckpt_coverage :
  parse_impl:(string -> (Parsetree.structure, string) result) ->
  parse_interface:(string -> (Parsetree.signature, string) result) ->
  ml_files:string list ->
  Finding.t list
(** One advisory [ckpt-coverage] warning per .ml that declares a record
    with mutable fields while its sibling .mli exports no
    [capture]/[restore] pair: such state cannot travel in a checkpoint.
    Scope (the checkpointed libraries) is applied by the driver; files
    without an .mli are left to [mli-required]. *)

val unused_export :
  parse_interface:(string -> (Parsetree.signature, string) result) ->
  lib_dirs:(string * string list) list ->
  search_files:string list ->
  Finding.t list
(** [unused_export ~parse_interface ~lib_dirs ~search_files] reports an
    advisory [unused-export] warning for every value declared in one of
    a library's .mli files ([lib_dirs] maps a library directory to its
    .mli paths) that is never referenced, as a [Module.value] token,
    in any of [search_files] outside that library directory. *)
