(** A single linter finding: one rule firing at one source location. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

val make :
  file:string ->
  line:int ->
  ?col:int ->
  rule:string ->
  severity:severity ->
  string ->
  t

val compare : t -> t -> int
(** Orders by file, line, column, rule, message — the report order. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Renders as [file:line rule message], the CLI's text output line. *)
