(* Project-shape checks that no single parsetree can see:

   - mli-required: every implementation under lib/ must publish an
     interface, otherwise everything it defines is exported and the
     unused-export analysis (and the human reader) loses the boundary.
   - unused-export: a value declared in an .mli but never referenced
     outside its own .ml/.mli pair is dead API surface (advisory by
     default, an error under --strict).  Reference detection is textual
     (token `Module.value` with identifier boundaries), which matches
     both same-library siblings (`Module.value`) and wrapped-library
     consumers (`Lib.Module.value` contains the token) and deliberately
     errs on the side of silence. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let has_component path name =
  List.exists (String.equal name) (String.split_on_char '/' path)

(* Executable-only trees: modules there are roots, an .mli would be
   ceremony. *)
let mli_exempt path =
  has_component path "bin"
  || has_component path "bench"
  || has_component path "examples"

let mli_required ~ml_files =
  List.filter_map
    (fun ml ->
      if mli_exempt ml then None
      else
        let mli = Filename.remove_extension ml ^ ".mli" in
        if Sys.file_exists mli then None
        else
          Some
            (Finding.make ~file:ml ~line:1 ~rule:"mli-required"
               ~severity:(Rules.severity_of "mli-required")
               (Printf.sprintf
                  "missing %s: modules under lib/ must declare their \
                   interface"
                  (Filename.basename mli))))
    ml_files

(* --- checkpoint coverage -------------------------------------------- *)

(* A module whose implementation declares a record with mutable fields
   holds run state; in the checkpointed libraries its interface must
   export a [capture]/[restore] pair or checkpoints silently miss it.
   The mutable-record heuristic is deliberately narrow (refs and
   hashtables buried in closures escape it) but it is exactly how this
   codebase structures component state, and false positives are
   waivable with the usual annotation. *)

let first_mutable_record_line ast =
  List.find_map
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_type (_, decls) ->
          List.find_map
            (fun decl ->
              match decl.Parsetree.ptype_kind with
              | Parsetree.Ptype_record labels ->
                  List.find_map
                    (fun lbl ->
                      match lbl.Parsetree.pld_mutable with
                      | Asttypes.Mutable ->
                          Some
                            (lbl.Parsetree.pld_loc.Location.loc_start
                               .Lexing.pos_lnum)
                      | Asttypes.Immutable -> None)
                    labels
              | _ -> None)
            decls
      | _ -> None)
    ast

let interface_exports signature name =
  List.exists
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd -> String.equal vd.Parsetree.pval_name.txt name
      | _ -> false)
    signature

let ckpt_coverage ~parse_impl ~parse_interface ~ml_files =
  List.filter_map
    (fun ml ->
      if mli_exempt ml then None
      else
        match parse_impl ml with
        | Error _ -> None
        | Ok ast -> (
            match first_mutable_record_line ast with
            | None -> None
            | Some line -> (
                let mli = Filename.remove_extension ml ^ ".mli" in
                (* A missing interface is mli-required's finding. *)
                if not (Sys.file_exists mli) then None
                else
                  match parse_interface mli with
                  | Error _ -> None
                  | Ok signature ->
                      if
                        interface_exports signature "capture"
                        && interface_exports signature "restore"
                      then None
                      else
                        Some
                          (Finding.make ~file:ml ~line ~rule:"ckpt-coverage"
                             ~severity:(Rules.severity_of "ckpt-coverage")
                             (Printf.sprintf
                                "mutable record state without a \
                                 capture/restore pair in %s — checkpoints \
                                 cannot carry this module"
                                (Filename.basename mli))))))
    ml_files

(* --- unused exports ------------------------------------------------- *)

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Does [hay] contain [needle] as a module-path token?  The character
   before must not extend an identifier (a preceding '.' is fine: that
   is the wrapping library prefix) and the character after must not
   extend the value name. *)
let contains_token hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec search from =
    if from + nn > nh then false
    else
      match String.index_from_opt hay from needle.[0] with
      | None -> false
      | Some i when i + nn > nh -> false
      | Some i ->
          if
            String.sub hay i nn = needle
            && (i = 0 || not (is_ident_char hay.[i - 1]))
            && (i + nn = nh || not (is_ident_char hay.[i + nn]))
          then true
          else search (i + 1)
  in
  nn > 0 && search 0

let module_name_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let exported_values ~file signature =
  List.filter_map
    (fun item ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          let name = vd.Parsetree.pval_name.txt in
          (* Operators cannot be matched textually; leave them alone. *)
          if name <> "" && is_ident_char name.[0] then
            Some (name, vd.Parsetree.pval_loc.Location.loc_start.Lexing.pos_lnum)
          else None
      | _ -> None)
    signature
  |> fun vals -> (file, module_name_of_file file, vals)

let unused_export ~parse_interface ~lib_dirs ~search_files =
  (* Load every searchable file once. *)
  let corpus =
    List.map (fun f -> (f, try read_file f with Sys_error _ -> "")) search_files
  in
  List.concat_map
    (fun (_lib_dir, mli_files) ->
      List.concat_map
        (fun mli ->
          match parse_interface mli with
          | Error _ -> []
          | Ok signature ->
              let file, modname, vals = exported_values ~file:mli signature in
              (* Only the defining .ml/.mli pair is excluded from the
                 search: an export that no sibling, test, bench or
                 binary mentions is dead surface even inside its own
                 library. *)
              let stem = Filename.remove_extension mli in
              let outside =
                List.filter
                  (fun (f, _) -> Filename.remove_extension f <> stem)
                  corpus
              in
              List.filter_map
                (fun (value, line) ->
                  let needle = modname ^ "." ^ value in
                  if
                    List.exists
                      (fun (_, text) -> contains_token text needle)
                      outside
                  then None
                  else
                    Some
                      (Finding.make ~file ~line ~rule:"unused-export"
                         ~severity:(Rules.severity_of "unused-export")
                         (Printf.sprintf
                            "%s is exported but never referenced outside %s"
                            needle
                            (Filename.basename mli))))
                vals)
        mli_files)
    lib_dirs
