(** The cross-module call/escape graph behind the domain-safety rules.

    Nodes are top-level (and nested-module) [let] bindings across every
    analysed file, module-qualified via the owning dune library's
    [(name ...)]. "Runs on a worker domain" is rooted at [Domain.spawn]
    arguments and at closures handed to [Job.create]/[Job.pure], then
    propagated transitively over syntactically resolvable references.

    The analysis is conservative by under-approximation: references it
    cannot resolve (locals, stdlib, closures stored in data) are
    dropped, so it never flags code it cannot place — see DESIGN.md §11
    for the full soundness caveats. *)

val check : (string * Parsetree.structure) list -> Finding.t list
(** [check [(file, ast); ...]] builds the graph over the given
    implementation files and returns every [shared-mutable-capture] and
    [domain-unsafe-call] finding, unsuppressed and unsorted (the driver
    filters and orders). *)

val dump : (string * Parsetree.structure) list -> string
(** Human-readable graph listing for [rla_lint --graph]: one line per
    node with its module-qualified name, location, root/reachable
    marks, and resolved outgoing edges. *)
