(** Per-file parsetree checks: wall-clock, ambient-rng, poly-compare
    and hashtbl-order.  Scope-agnostic — the driver filters findings by
    each rule's directory scope afterwards. *)

val check_impl : file:string -> Parsetree.structure -> Finding.t list
