(* The rule registry.  Scopes name top-level trees: a rule with
   [Dirs l] only applies to files whose scope key (computed by the
   driver from the path: "lib/<sub>" for files under a lib component,
   "bin"/"bench"/"test"/"examples" for those trees) is in [l].  Files
   with no recognizable scope key — e.g. test fixtures passed
   explicitly — are checked against every rule, so fixtures can
   exercise each rule without replicating the repo layout. *)

type scope = All | Dirs of string list

type t = {
  name : string;
  summary : string;
  scope : scope;
  severity : Finding.severity;
}

let all =
  [
    {
      name = "wall-clock";
      summary =
        "ambient wall-clock reads (Unix.gettimeofday/Unix.time/Sys.time) \
         are forbidden; simulation time must come from Sim.Scheduler.now";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "ambient-rng";
      summary =
        "global Random.* (incl. Random.self_init) is forbidden; draw from \
         the seeded, splittable Sim.Rng instead";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "poly-compare";
      summary =
        "polymorphic compare/hash on floats or records in hot-path \
         libraries; use explicit comparators (Float.compare, Int.compare)";
      scope = Dirs [ "lib/sim"; "lib/net"; "lib/core"; "lib/tcp"; "lib/stats" ];
      severity = Finding.Error;
    };
    {
      name = "hashtbl-order";
      summary =
        "unordered Hashtbl iteration on an exporter-feeding path; sort the \
         keys first or keep an insertion-order side list";
      scope = Dirs [ "lib/obs"; "lib/runner"; "lib/experiments" ];
      severity = Finding.Error;
    };
    {
      name = "mli-required";
      summary = "every .ml under lib/ must have a matching .mli";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "unused-export";
      summary =
        "value exported in an .mli but never referenced outside its \
         defining file (advisory; an error under --strict)";
      scope = All;
      severity = Finding.Warning;
    };
    {
      name = "ckpt-coverage";
      summary =
        "module holds mutable record state but its interface exports no \
         capture/restore pair, so checkpoints cannot carry it (advisory)";
      scope = Dirs [ "lib/sim"; "lib/net"; "lib/tcp"; "lib/core" ];
      severity = Finding.Warning;
    };
    {
      name = "shared-mutable-capture";
      summary =
        "module-level mutable state (ref/Hashtbl/Buffer/mutable record) \
         reachable from a worker-domain closure without Atomic or Mutex \
         protection; a silent cross-domain data race";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "domain-unsafe-call";
      summary =
        "worker-domain-reachable call into non-reentrant ambient stdlib \
         state (Format.std_formatter, stdout/stderr printing, global \
         Random); domains would interleave or race on it";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "alloc-hot";
      summary =
        "allocation construct (closure, tuple/record/constructor return, \
         ref, Printf/Format/List combinators, string building, boxed \
         float let) inside a function annotated (* lint: hot ... *)";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "hot-coverage";
      summary =
        "a (* lint: hot <function> *) annotation must name a function \
         that the file defines and its interface exports";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "bad-annotation";
      summary =
        "malformed lint annotation; the grammar is \
         (* lint: allow[-file] <rule> -- <reason> *) or \
         (* lint: hot <function> -- <reason> *)";
      scope = All;
      severity = Finding.Error;
    };
    {
      name = "parse-error";
      summary = "source file does not parse; the linter cannot vouch for it";
      scope = All;
      severity = Finding.Error;
    };
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) all

let names = List.map (fun r -> r.name) all

(* [bad-annotation] and [parse-error] are infrastructure: they stay on
   even under --rules, otherwise a typo'd suppression would silently
   disable the rule it claims to suppress. *)
let always_on = [ "bad-annotation"; "parse-error" ]

let severity_of name =
  match find name with Some r -> r.severity | None -> Finding.Error

let in_scope rule ~scope_key =
  match rule.scope with
  | All -> true
  | Dirs dirs -> (
      match scope_key with
      | None -> true
      | Some k -> List.exists (String.equal k) dirs)
