(* In-source lint annotations.  Two directive families share one rigid
   grammar — a directive that does not say what it governs and why is
   itself a finding:

     (* lint: allow <rule> -- <reason> *)        suppress, same + next line
     (* lint: allow-file <rule> -- <reason> *)   suppress, whole file
     (* lint: hot <function> -- <reason> *)      alloc-hot contract: the
                                                 named exported function is
                                                 a hot path; allocation
                                                 constructs in its body are
                                                 errors

   Comments are located with a small scanner that understands string
   literals, char literals and nested comments, because the parsetree
   drops comments. *)

type t = { line : int; rule : string; file_wide : bool; reason : string }

type hot = { hot_line : int; target : string; hot_reason : string }

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let split_words s =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_space c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !words

(* Extract every top-level comment as (start_line, body). *)
let comments src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      (* Skip a string literal. *)
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '\\' ->
            if !i + 1 < n then bump src.[!i + 1];
            incr i
        | '"' -> closed := true
        | ch -> bump ch);
        incr i
      done
    end
    else if
      c = '\''
      && !i + 2 < n
      && (src.[!i + 2] = '\'' || (src.[!i + 1] = '\\' && !i + 3 < n))
    then
      (* A char literal ('x' or an escape like '\n', '\''); skipping it
         keeps quotes inside from confusing the string scanner. *)
      if src.[!i + 1] = '\\' then i := !i + 4 else i := !i + 3
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let body = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string body "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string body "*)";
          i := !i + 2
        end
        else begin
          bump src.[!i];
          Buffer.add_char body src.[!i];
          incr i
        end
      done;
      (* A multi-line directive comment governs the line after it ends,
         so the suppression anchor is the closing line. *)
      out := (start_line, !line, Buffer.contents body) :: !out
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

let bad ~file ~line message =
  Finding.make ~file ~line ~rule:"bad-annotation" ~severity:Finding.Error
    message

type parsed = Allow of t | Hot_fn of hot

let parse_directive ~file ~line ~valid_rules body =
  match split_words body with
  | kw :: rest when String.equal kw "allow" || String.equal kw "allow-file"
    -> (
      let file_wide = String.equal kw "allow-file" in
      match rest with
      | [] -> Error (bad ~file ~line "missing rule name in lint annotation")
      | rule :: tail -> (
          if not (List.exists (String.equal rule) valid_rules) then
            Error
              (bad ~file ~line
                 (Printf.sprintf "unknown rule %S in lint annotation" rule))
          else
            match tail with
            | "--" :: reason_words when reason_words <> [] ->
                Ok
                  (Allow
                     {
                       line;
                       rule;
                       file_wide;
                       reason = String.concat " " reason_words;
                     })
            | _ ->
                Error
                  (bad ~file ~line
                     (Printf.sprintf
                        "lint annotation for %S must carry a reason: \
                         (* lint: allow %s -- <reason> *)"
                        rule rule))))
  | kw :: rest when String.equal kw "hot" -> (
      match rest with
      | [] ->
          Error
            (bad ~file ~line
               "hot annotation must name a function: (* lint: hot <function> \
                -- <reason> *)")
      | target :: tail -> (
          match tail with
          | "--" :: reason_words when reason_words <> [] ->
              Ok
                (Hot_fn
                   {
                     hot_line = line;
                     target;
                     hot_reason = String.concat " " reason_words;
                   })
          | _ ->
              Error
                (bad ~file ~line
                   (Printf.sprintf
                      "hot annotation for %S must carry a reason: (* lint: \
                       hot %s -- <reason> *)"
                      target target))))
  | kw :: _ ->
      Error
        (bad ~file ~line
           (Printf.sprintf
              "unknown lint directive %S (expected allow, allow-file or hot)"
              kw))
  | [] -> Error (bad ~file ~line "empty lint annotation")

let collect ~file ~valid_rules src =
  List.fold_left
    (fun (allows, hots, findings) (line, end_line, body) ->
      let trimmed = String.trim body in
      if String.length trimmed >= 5 && String.sub trimmed 0 5 = "lint:" then
        let rest = String.sub trimmed 5 (String.length trimmed - 5) in
        match parse_directive ~file ~line ~valid_rules rest with
        | Ok (Allow a) -> ({ a with line = end_line } :: allows, hots, findings)
        | Ok (Hot_fn h) -> (allows, h :: hots, findings)
        | Error f -> (allows, hots, f :: findings)
      else (allows, hots, findings))
    ([], [], []) (comments src)
  |> fun (allows, hots, findings) ->
  (List.rev allows, List.rev hots, List.rev findings)

let suppresses annot (finding : Finding.t) =
  String.equal annot.rule finding.rule
  && (annot.file_wide
     || annot.line = finding.line
     || annot.line = finding.line - 1)
