(* In-source suppression annotations.  The grammar is deliberately
   rigid — a suppression that does not say which rule it silences and
   why is itself a finding:

     (* lint: allow <rule> -- <reason> *)        same + next line
     (* lint: allow-file <rule> -- <reason> *)   whole file

   Comments are located with a small scanner that understands string
   literals, char literals and nested comments, because the parsetree
   drops comments. *)

type t = { line : int; rule : string; file_wide : bool; reason : string }

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let split_words s =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_space c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !words

(* Extract every top-level comment as (start_line, body). *)
let comments src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      (* Skip a string literal. *)
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '\\' ->
            if !i + 1 < n then bump src.[!i + 1];
            incr i
        | '"' -> closed := true
        | ch -> bump ch);
        incr i
      done
    end
    else if
      c = '\''
      && !i + 2 < n
      && (src.[!i + 2] = '\'' || (src.[!i + 1] = '\\' && !i + 3 < n))
    then
      (* A char literal ('x' or an escape like '\n', '\''); skipping it
         keeps quotes inside from confusing the string scanner. *)
      if src.[!i + 1] = '\\' then i := !i + 4 else i := !i + 3
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let body = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string body "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string body "*)";
          i := !i + 2
        end
        else begin
          bump src.[!i];
          Buffer.add_char body src.[!i];
          incr i
        end
      done;
      out := (start_line, Buffer.contents body) :: !out
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

let bad ~file ~line message =
  Finding.make ~file ~line ~rule:"bad-annotation" ~severity:Finding.Error
    message

let parse_directive ~file ~line ~valid_rules body =
  match split_words body with
  | kw :: rest when String.equal kw "allow" || String.equal kw "allow-file"
    -> (
      let file_wide = String.equal kw "allow-file" in
      match rest with
      | [] -> Error (bad ~file ~line "missing rule name in lint annotation")
      | rule :: tail -> (
          if not (List.exists (String.equal rule) valid_rules) then
            Error
              (bad ~file ~line
                 (Printf.sprintf "unknown rule %S in lint annotation" rule))
          else
            match tail with
            | "--" :: reason_words when reason_words <> [] ->
                Ok
                  {
                    line;
                    rule;
                    file_wide;
                    reason = String.concat " " reason_words;
                  }
            | _ ->
                Error
                  (bad ~file ~line
                     (Printf.sprintf
                        "lint annotation for %S must carry a reason: \
                         (* lint: allow %s -- <reason> *)"
                        rule rule))))
  | kw :: _ ->
      Error
        (bad ~file ~line
           (Printf.sprintf
              "unknown lint directive %S (expected allow or allow-file)" kw))
  | [] -> Error (bad ~file ~line "empty lint annotation")

let collect ~file ~valid_rules src =
  List.fold_left
    (fun (annots, findings) (line, body) ->
      let trimmed = String.trim body in
      if String.length trimmed >= 5 && String.sub trimmed 0 5 = "lint:" then
        let rest = String.sub trimmed 5 (String.length trimmed - 5) in
        match parse_directive ~file ~line ~valid_rules rest with
        | Ok a -> (a :: annots, findings)
        | Error f -> (annots, f :: findings)
      else (annots, findings))
    ([], []) (comments src)
  |> fun (annots, findings) -> (List.rev annots, List.rev findings)

let suppresses annot (finding : Finding.t) =
  String.equal annot.rule finding.rule
  && (annot.file_wide
     || annot.line = finding.line
     || annot.line = finding.line - 1)
