(* Self-contained JSON for the linter's machine-readable output.  The
   emitter is deliberately canonical (sorted object keys are the
   caller's job; we keep insertion order) and the parser accepts
   exactly the subset the emitter produces plus ordinary whitespace,
   so [of_string (to_string v)] round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    let s = go 1 in
    (* Keep a decimal point so the value parses back as a float. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

(* --- parser --------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance c;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance c;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance c;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance c;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance c;
            go ()
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then error c "bad \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            (* Only codes we ever emit: control characters < 0x20. *)
            if code > 0xff then error c "unsupported \\u escape";
            Buffer.add_char buf (Char.chr code);
            c.pos <- c.pos + 5;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected '%c'" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing input" else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
