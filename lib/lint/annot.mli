(** In-source suppression annotations.

    Grammar (inside an ordinary OCaml comment):
    {v
      (* lint: allow <rule> -- <reason> *)        suppresses <rule> on
                                                  this line and the next
      (* lint: allow-file <rule> -- <reason> *)   suppresses <rule> for
                                                  the whole file
    v}
    The reason is mandatory; malformed annotations and unknown rule
    names come back as [bad-annotation] findings. *)

type t = { line : int; rule : string; file_wide : bool; reason : string }

val collect :
  file:string -> valid_rules:string list -> string -> t list * Finding.t list
(** Scans raw source text (string/char literals and nested comments are
    understood) and returns the well-formed annotations plus a
    [bad-annotation] finding for each malformed one. *)

val suppresses : t -> Finding.t -> bool
(** Whether an annotation silences a finding: same rule, and file-wide
    or located on the finding's line or the line above. *)
