(** In-source lint annotations.

    Grammar (inside an ordinary OCaml comment):
    {v
      (* lint: allow <rule> -- <reason> *)        suppresses <rule> on
                                                  this line and the next
      (* lint: allow-file <rule> -- <reason> *)   suppresses <rule> for
                                                  the whole file
      (* lint: hot <function> -- <reason> *)      declares the named
                                                  exported function a
                                                  hot path; alloc-hot
                                                  flags allocation
                                                  constructs in it
    v}
    The reason is mandatory everywhere; malformed annotations and
    unknown rule names come back as [bad-annotation] findings. *)

type t = { line : int; rule : string; file_wide : bool; reason : string }

type hot = { hot_line : int; target : string; hot_reason : string }
(** A [(* lint: hot Pool.release -- <reason> *)] directive: [target] is
    the dotted binding path of a function defined (and exported) by the
    file that carries the annotation. *)

val collect :
  file:string ->
  valid_rules:string list ->
  string ->
  t list * hot list * Finding.t list
(** Scans raw source text (string/char literals and nested comments are
    understood) and returns the well-formed suppressions, the hot
    declarations, and a [bad-annotation] finding for each malformed
    directive. *)

val suppresses : t -> Finding.t -> bool
(** Whether an annotation silences a finding: same rule, and file-wide
    or located on the finding's line or the line above. *)
