type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let make ~file ~line ?(col = 0) ~rule ~severity message =
  { file; line; col; rule; severity; message }

(* Explicit comparator chain — the linter practices what it preaches. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0

let to_string f = Printf.sprintf "%s:%d %s %s" f.file f.line f.rule f.message
