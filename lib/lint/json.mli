(** Minimal JSON values for [rla_lint --json]: an emitter plus a parser
    for exactly the emitted subset, so reports round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses a complete JSON document; [Error] carries a short reason. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on other values. *)
