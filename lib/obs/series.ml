(* Bounded time-series recorder.  Memory is capped at [limit] samples:
   when the buffer fills, every other stored sample is discarded and the
   recording stride doubles, so a run of any length keeps an
   approximately uniform subsample of at most [limit] points.  The
   decimation schedule depends only on the sequence of [add] calls —
   two series fed identical call sequences keep identical sample
   times — which the flow-probe CSV export relies on to join columns. *)

type t = {
  name : string;
  limit : int;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
  mutable stride : int;  (* record 1 of every [stride] offered samples *)
  mutable skip : int;  (* offers left to discard before the next record *)
  mutable offered : int;
}

let default_limit = 4096

let create ?(limit = default_limit) name =
  if limit < 2 then invalid_arg "Series.create: limit must be at least 2";
  {
    name;
    limit;
    times = [||];
    values = [||];
    len = 0;
    stride = 1;
    skip = 0;
    offered = 0;
  }

let name t = t.name

let length t = t.len

let limit t = t.limit

let stride t = t.stride

let offered t = t.offered

(* Keep the even-indexed half; the stride doubles so future samples
   continue the same spacing. *)
let decimate t =
  let kept = (t.len + 1) / 2 in
  for i = 0 to kept - 1 do
    t.times.(i) <- t.times.(2 * i);
    t.values.(i) <- t.values.(2 * i)
  done;
  t.len <- kept;
  t.stride <- 2 * t.stride;
  t.skip <- t.stride - 1

let add t ~time value =
  t.offered <- t.offered + 1;
  if t.skip > 0 then t.skip <- t.skip - 1
  else begin
    if t.len = Array.length t.times then begin
      let cap = Stdlib.min t.limit (Stdlib.max 64 (2 * t.len)) in
      let grow a = Array.append (Array.sub a 0 t.len) (Array.make (cap - t.len) 0.0) in
      t.times <- grow t.times;
      t.values <- grow t.values
    end;
    t.times.(t.len) <- time;
    t.values.(t.len) <- value;
    t.len <- t.len + 1;
    t.skip <- t.stride - 1;
    if t.len >= t.limit then decimate t
  end

let times t = Array.sub t.times 0 t.len

let values t = Array.sub t.values 0 t.len

let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let iter t ~f =
  for i = 0 to t.len - 1 do
    f ~time:t.times.(i) t.values.(i)
  done

(* The buffers are restored at exactly [s_len] capacity: the next add
   that needs room re-grows them, which is unobservable (growth policy
   depends only on [len]/[limit], both restored). *)
type state = {
  s_times : float array;
  s_values : float array;
  s_stride : int;
  s_skip : int;
  s_offered : int;
}

let capture t =
  {
    s_times = Array.sub t.times 0 t.len;
    s_values = Array.sub t.values 0 t.len;
    s_stride = t.stride;
    s_skip = t.skip;
    s_offered = t.offered;
  }

let restore t st =
  t.times <- Array.copy st.s_times;
  t.values <- Array.copy st.s_values;
  t.len <- Array.length st.s_times;
  t.stride <- st.s_stride;
  t.skip <- st.s_skip;
  t.offered <- st.s_offered
