type counter = { counter_name : string; mutable count : int }

type gauge = { gauge_name : string; mutable gauge_value : float }

type event = { time : float; source : string; event : string; value : float }

(* Handles are interned by name (get-or-create), so two components
   naming the same metric share one cell.  Insertion order is kept for
   every family: exports iterate in creation order, which is itself
   deterministic for a deterministic simulation, keeping reports
   byte-identical across runs. *)
type t = {
  series_limit : int;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  series_tbl : (string, Series.t) Hashtbl.t;
  mutable counter_order : counter list;  (* reverse creation order *)
  mutable gauge_order : gauge list;
  mutable series_order : Series.t list;
  mutable taps : (event -> unit) list;  (* reverse subscription order *)
}

let create ?(series_limit = Series.default_limit) () =
  if series_limit < 2 then
    invalid_arg "Registry.create: series_limit must be at least 2";
  {
    series_limit;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    series_tbl = Hashtbl.create 64;
    counter_order = [];
    gauge_order = [];
    series_order = [];
    taps = [];
  }

(* --- counters ------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { counter_name = name; count = 0 } in
      Hashtbl.replace t.counters name c;
      t.counter_order <- c :: t.counter_order;
      c

let incr c = c.count <- c.count + 1

let add c n = c.count <- c.count + n

let count c = c.count

let counter_name c = c.counter_name

(* --- gauges --------------------------------------------------------- *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { gauge_name = name; gauge_value = 0.0 } in
      Hashtbl.replace t.gauges name g;
      t.gauge_order <- g :: t.gauge_order;
      g

let set g v = g.gauge_value <- v

let gauge_value g = g.gauge_value

let gauge_name g = g.gauge_name

(* --- series --------------------------------------------------------- *)

let series ?limit t name =
  match Hashtbl.find_opt t.series_tbl name with
  | Some s -> s
  | None ->
      let s =
        Series.create ~limit:(Option.value limit ~default:t.series_limit) name
      in
      Hashtbl.replace t.series_tbl name s;
      t.series_order <- s :: t.series_order;
      s

let sample ?limit t name ~time value = Series.add (series ?limit t name) ~time value

let find_series t name = Hashtbl.find_opt t.series_tbl name

(* --- event taps ----------------------------------------------------- *)

let on_event t f = t.taps <- f :: t.taps

let emit t ~time ~source ~event ~value =
  match t.taps with
  | [] -> ()
  | taps ->
      let e = { time; source; event; value } in
      List.iter (fun f -> f e) (List.rev taps)

(* --- enumeration ----------------------------------------------------- *)

let counters t =
  List.rev_map (fun c -> (c.counter_name, c.count)) t.counter_order

let gauges t =
  List.rev_map (fun g -> (g.gauge_name, g.gauge_value)) t.gauge_order

let all_series t = List.rev t.series_order

(* --- checkpoint/restore ---------------------------------------------- *)

type state = {
  s_counters : (string * int) list;  (* creation order *)
  s_gauges : (string * float) list;
  s_series : (string * int * Series.state) list;  (* (name, limit, state) *)
}

let capture t =
  {
    s_counters = counters t;
    s_gauges = gauges t;
    s_series =
      List.rev_map
        (fun s -> (Series.name s, Series.limit s, Series.capture s))
        t.series_order;
  }

(* Interning in saved creation order reproduces the order lists: after
   a deterministic rebuild the components have already interned a
   prefix of these names in the same order, so each entry either finds
   its existing cell or appends in the captured position.  Taps are not
   state — subscribers re-attach themselves. *)
let restore t st =
  List.iter (fun (name, n) -> (counter t name).count <- n) st.s_counters;
  List.iter (fun (name, v) -> (gauge t name).gauge_value <- v) st.s_gauges;
  List.iter
    (fun (name, limit, s) -> Series.restore (series ~limit t name) s)
    st.s_series
