(** Bounded sampled time series.

    A series records [(time, value)] samples with memory capped at
    [limit] points: when the buffer fills, the even-indexed half is kept
    and the recording stride doubles (1, 2, 4, ... offered samples per
    stored one), so arbitrarily long runs retain an approximately
    uniform subsample.

    Decimation is a pure function of the sequence of {!add} calls: two
    series created with the same [limit] and offered samples at the same
    call points keep exactly the same sample times, which lets exporters
    join sibling series (e.g. a flow's cwnd and bytes-acked columns)
    row by row. *)

type t

val default_limit : int
(** 4096 samples. *)

val create : ?limit:int -> string -> t
(** [create ?limit name] is an empty series.  [limit] (default
    {!default_limit}) must be at least 2; raises [Invalid_argument]
    otherwise. *)

val name : t -> string

val add : t -> time:float -> float -> unit
(** Offer one sample.  Whether it is stored depends on the current
    decimation stride. *)

val length : t -> int
(** Samples currently stored (at most [limit]). *)

val limit : t -> int

val stride : t -> int
(** Current decimation stride: one stored sample per [stride] offers. *)

val offered : t -> int
(** Total samples offered over the series' lifetime. *)

val times : t -> float array
(** Stored sample times, oldest first (a copy). *)

val values : t -> float array
(** Stored sample values, aligned with {!times} (a copy). *)

val last : t -> (float * float) option
(** Most recent stored sample. *)

val iter : t -> f:(time:float -> float -> unit) -> unit

type state = {
  s_times : float array;
  s_values : float array;
  s_stride : int;
  s_skip : int;
  s_offered : int;
}
(** Complete recording state: stored samples plus the decimation
    position ([name] and [limit] are configuration). *)

val capture : t -> state

val restore : t -> state -> unit
(** After [restore t (capture t')], subsequent identical [add]
    sequences store identical samples — the decimation schedule
    continues exactly where [t'] left off. *)
