(** Metrics registry: named counters, gauges, bounded time series, and
    an event-tap API.

    A registry is installed on a simulation through
    [Net.Network.set_registry]; instrumented components look it up once
    and cache their handles, so the per-event cost is a single mutable
    update — and with no registry installed, a single [option] match.
    Instrumentation never schedules simulator events and never draws
    from any RNG stream, so simulation results (event counts, fairness
    numbers, packet traces) are bit-identical with observability on or
    off.

    Handles are interned by name: asking twice for the same name
    returns the same cell.  Enumeration follows creation order, which
    is deterministic for a deterministic simulation. *)

type t

val create : ?series_limit:int -> unit -> t
(** Fresh registry; [series_limit] (default {!Series.default_limit})
    caps the samples kept by each series created through {!series}. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the named counter (starts at 0). *)

val incr : counter -> unit

val add : counter -> int -> unit

val count : counter -> int

val counter_name : counter -> string

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** Get or create the named gauge (starts at 0.0). *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val gauge_name : gauge -> string

(** {2 Time series} *)

val series : ?limit:int -> t -> string -> Series.t
(** Get or create the named series.  [limit] applies only on creation. *)

val sample : ?limit:int -> t -> string -> time:float -> float -> unit
(** [sample t name ~time v] offers one sample to the named series
    (creating it on first use).  Hot paths should prefer caching the
    handle from {!series}. *)

val find_series : t -> string -> Series.t option

(** {2 Event taps} *)

type event = {
  time : float;  (** Simulated time of the event. *)
  source : string;  (** Emitting component, e.g. ["tcp.flow3"]. *)
  event : string;  (** Event kind, e.g. ["window_cut"]. *)
  value : float;  (** Kind-specific payload (new cwnd, queue length, ...). *)
}

val on_event : t -> (event -> unit) -> unit
(** Subscribe to instrumentation events; taps run synchronously in
    subscription order. *)

val emit : t -> time:float -> source:string -> event:string -> value:float -> unit
(** Deliver an event to all taps; a no-op when none are subscribed. *)

(** {2 Enumeration (for exporters)} *)

val counters : t -> (string * int) list
(** All counters in creation order. *)

val gauges : t -> (string * float) list

val all_series : t -> Series.t list

(** {2 Checkpoint/restore} *)

type state = {
  s_counters : (string * int) list;  (** creation order *)
  s_gauges : (string * float) list;
  s_series : (string * int * Series.state) list;
      (** [(name, limit, state)] in creation order *)
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite all metric cells with the captured values, interning in
    saved creation order so exporters enumerate identically to the
    original run.  Intended for a freshly rebuilt registry whose
    components interned the same name prefix in the same order.  Taps
    are not restored — subscribers re-attach themselves. *)
