(* Discretized window distribution of one TCP class: [m.(i)] is the
   probability mass at window w_i = (i + 0.5) * h.  The transport
   equation combines upward advection (additive increase at velocity
   (1-p)/rtt) with a halving kernel (multiplicative decrease at rate
   p w / rtt moving mass from w to w/2).  Every operator below
   conserves total mass exactly. *)

let center ~h i = (float_of_int i +. 0.5) *. h

(* Place unit mass at window [w], split linearly between the two
   bracketing bin centers so the histogram mean equals [w]. *)
let init_delta ~bins ~h w =
  let m = Array.make bins 0.0 in
  let f = (w /. h) -. 0.5 in
  if f <= 0.0 then m.(0) <- 1.0
  else if f >= float_of_int (bins - 1) then m.(bins - 1) <- 1.0
  else begin
    let lo = int_of_float f in
    let frac = f -. float_of_int lo in
    m.(lo) <- 1.0 -. frac;
    m.(lo + 1) <- frac
  end;
  m

let total m = Array.fold_left ( +. ) 0.0 m

let mean ~h m =
  let acc = ref 0.0 in
  Array.iteri (fun i mi -> acc := !acc +. (mi *. center ~h i)) m;
  !acc

let rms ~h m =
  let acc = ref 0.0 in
  Array.iteri
    (fun i mi ->
      let w = center ~h i in
      acc := !acc +. (mi *. w *. w))
    m;
  sqrt (Float.max 0.0 !acc)

(* Accumulate the transport derivative into [dm] (caller zeroes it).
   [growth] is the additive-increase velocity (1-p)/rtt in windows per
   second; [halve_coeff] is p/rtt, so bin i loses mass at rate
   halve_coeff * w_i and deposits it at w_i / 2.

   Advection is first-order upwind; the top bin has no outflow, so
   mass that would exceed w_max accumulates there instead of leaking
   (it still halves, which is what keeps the ceiling honest).  The
   halving gain is split linearly between the two bins bracketing
   w_i / 2; bin 0's halving is a no-op (target below the first
   center), which doubles as the w >= 1 window floor. *)
let deriv ~h ~growth ~halve_coeff m dm =
  let bins = Array.length m in
  let adv = growth /. h in
  (* Upwind advection. *)
  dm.(0) <- dm.(0) -. (adv *. m.(0));
  for i = 1 to bins - 2 do
    dm.(i) <- dm.(i) +. (adv *. (m.(i - 1) -. m.(i)))
  done;
  if bins > 1 then
    dm.(bins - 1) <- dm.(bins - 1) +. (adv *. m.(bins - 2));
  (* Halving kernel. *)
  if halve_coeff > 0.0 then
    for i = 1 to bins - 1 do
      let rate = halve_coeff *. center ~h i *. m.(i) in
      if rate <> 0.0 then begin
        dm.(i) <- dm.(i) -. rate;
        let f = (center ~h i /. 2.0 /. h) -. 0.5 in
        if f <= 0.0 then dm.(0) <- dm.(0) +. rate
        else begin
          let lo = int_of_float f in
          let frac = f -. float_of_int lo in
          dm.(lo) <- dm.(lo) +. (rate *. (1.0 -. frac));
          dm.(lo + 1) <- dm.(lo + 1) +. (rate *. frac)
        end
      end
    done

(* Clip the tiny negative excursions RK4 can introduce near sharp
   fronts and renormalize to unit mass. *)
let renormalize m =
  let sum = ref 0.0 in
  for i = 0 to Array.length m - 1 do
    if m.(i) < 0.0 then m.(i) <- 0.0;
    sum := !sum +. m.(i)
  done;
  if !sum > 0.0 then
    for i = 0 to Array.length m - 1 do
      m.(i) <- m.(i) /. !sum
    done
