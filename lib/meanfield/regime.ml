(* (w_q, max_p, n) regime map: a canonical family of scenarios whose
   only free axes are the RED tuning knobs and the system size.  Each
   of the n TCP flows gets a 100 pkt/s fair share at a 100 ms
   round-trip time, and the RED thresholds scale linearly with n
   (min_th 5, max_th 15 at the n = 8 baseline), so growing n is a
   genuine change of operating regime — it scales the EWMA damping
   a = w_q * lambda — rather than a rescaling of units.  An RLA
   session with n receivers rides along, exercising the 1/n filter at
   every size. *)

type point = { w_q : float; max_p : float; n : int }

type classification = {
  point : point;
  verdict : Solver.verdict;
  amplitude : float;
  period : float option;
  queue_mean : float;
  drop_mean : float;
  fairness_ratio : float;
  criterion_stable : bool;
  tau_crit : float;
  rtt_star : float;
  agree : bool;
}

let share = 100.0 (* pkts/s per flow *)

let rtt = 0.1

let params_for ?(bins = 48) ?(t_max = 20.0) { w_q; max_p; n } =
  if n <= 0 then invalid_arg "Meanfield.Regime: n must be positive";
  let nf = float_of_int n in
  let capacity = share *. nf in
  let min_th = 0.625 *. nf in
  let max_th = 1.875 *. nf in
  Params.make ~capacity
    ~buffer:(4.0 *. max_th)
    ~red:{ Params.min_th; max_th; w_q; max_p }
    ~rla:{ Params.receivers = n; rtt }
    ~bins ~t_max ~settle:(0.4 *. t_max)
    [ { Params.flows = n; rtt } ]

let classify ?bins ?t_max point =
  let p = params_for ?bins ?t_max point in
  let sol = Solver.run p in
  let crit = Stability.evaluate p in
  {
    point;
    verdict = sol.Solver.verdict;
    amplitude = sol.Solver.amplitude;
    period = sol.Solver.period;
    queue_mean = sol.Solver.queue_mean;
    drop_mean = sol.Solver.drop_mean;
    fairness_ratio = sol.Solver.fairness_ratio;
    criterion_stable = crit.Stability.stable;
    tau_crit = crit.Stability.tau_crit;
    rtt_star = crit.Stability.rtt_star;
    agree = (sol.Solver.verdict = Solver.Steady) = crit.Stability.stable;
  }

let default_w_qs = [ 0.001; 0.002; 0.005; 0.02 ]

let default_max_ps = [ 0.05; 0.1; 0.5 ]

let default_ns = [ 8; 64; 1024; 65536; 1000000 ]

let default_grid () =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun max_p -> List.map (fun w_q -> { w_q; max_p; n }) default_w_qs)
        default_max_ps)
    default_ns
