(** Configuration of the mean-field solver.

    Describes one RED bottleneck shared by heterogeneous traffic
    classes: any number of TCP classes (each [flows] identical AIMD
    connections at a common round-trip time) plus at most one RLA
    multicast session modelled through
    {!Analysis.Rla_model.drift_rate_common}'s 1/n listening filter.
    All rates are in packets per second, queues in packets, times in
    seconds. *)

type red = {
  min_th : float;  (** RED lower threshold (packets of averaged queue). *)
  max_th : float;  (** RED upper threshold. *)
  w_q : float;  (** EWMA weight per arriving packet. *)
  max_p : float;  (** Drop probability at [max_th]. *)
}

type tcp_class = {
  flows : int;  (** Number of identical AIMD flows in the class. *)
  rtt : float;  (** Propagation round-trip time (queueing is added). *)
}

type rla = {
  receivers : int;  (** Multicast group size [n] for the 1/n filter. *)
  rtt : float;  (** Propagation round-trip time of the RLA session. *)
}

type t = {
  capacity : float;  (** Bottleneck service rate (pkts/s). *)
  buffer : float;  (** Physical queue limit (pkts); may be [infinity]. *)
  red : red;
  tcp_classes : tcp_class list;
  rla : rla option;
  count_uniformization : bool;
      (** Model the simulator's count-based drop spacing
          ([p_eff = 2 p_b / (1 + p_b)]) instead of raw [p_b]. *)
  bins : int;  (** Window-histogram resolution per TCP class. *)
  w_max : float option;  (** Histogram ceiling; [None] = auto. *)
  dt : float option;  (** RK4 step; [None] = CFL auto. *)
  t_max : float;  (** Integration horizon (model seconds). *)
  sample_every : float;  (** Trajectory sampling period. *)
  settle : float;  (** Transient to ignore before steadiness checks. *)
  steady_tol : float;
      (** Steady iff the tail avg-queue amplitude is below
          [steady_tol * (max_th - min_th)]. *)
}

val default_red : red
(** The simulator's RED defaults: 5 / 15 / 0.002 / 0.1. *)

val make :
  ?buffer:float ->
  ?red:red ->
  ?rla:rla ->
  ?count_uniformization:bool ->
  ?bins:int ->
  ?w_max:float ->
  ?dt:float ->
  ?t_max:float ->
  ?sample_every:float ->
  ?settle:float ->
  ?steady_tol:float ->
  capacity:float ->
  tcp_class list ->
  t
(** Build a configuration with sensible defaults (RED
    {!default_red}, 64 bins, auto [w_max] / [dt], 30 s horizon). *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent configurations. *)

val total_flows : t -> int
(** TCP flows across classes, plus 1 if an RLA session is present. *)

val min_rtt : t -> float

val max_rtt : t -> float

val w_max_auto : t -> float
(** Effective histogram ceiling: explicit [w_max] or
    [max 16 (4 * capacity * max_rtt / flows)]. *)

val dt_auto : t -> float
(** Effective RK4 step: explicit [dt] or the CFL bound
    [0.5 * min_rtt / max w_max (bins / w_max)]. *)

val drop_of_avg : t -> float -> float
(** Effective drop probability at a given averaged queue. *)

val avg_of_drop : t -> float -> float
(** Inverse of {!drop_of_avg} on the linear RED segment (clamped to
    [[min_th, max_th]] outside it). *)

val drop_slope : t -> float -> float
(** Derivative of {!drop_of_avg} at a given averaged queue (zero off
    the linear segment). *)
