(* Fixed-step RK4 integration of the mean-field system:

     per-class window histograms   (Dist transport)
     RLA window                    (Rla_model drift, 1/n filter)
     instantaneous queue           dq/dt = (1-p) lambda - C, projected
     RED averaged queue            d(avg)/dt = w_q lambda (q - avg)

   The drop probability p is frozen per step (computed from the
   averaged queue at step start), matching RED's sampled behaviour.
   The EWMA is the one stiff mode at large n (rate w_q * lambda can
   reach 1e5/s); it is integrated *exactly* over each step with an
   exponential update around the midpoint queue, so the RK4 step is
   set by the transport alone and stays n-independent.

   Sources react to a drop one round-trip after it happens (the loss
   is only detectable once the ACK stream reports it), so the window
   transport and the RLA drift are driven by the drop probability
   from t - R, kept in a per-step delay line — the current queueing
   delay q/C counts toward R.  This feedback delay is essential: it
   is what sustains RED's limit cycles at large n, where the
   per-packet EWMA lag (1 / w_q lambda) vanishes and a delay-free
   model would spuriously report the system stable.  Queue thinning
   (1-p) lambda keeps the *current* p: drops happen at the gateway
   now, only their congestion signal is late. *)

type verdict = Steady | Oscillatory

let verdict_to_string = function
  | Steady -> "steady"
  | Oscillatory -> "oscillatory"

type class_stats = { mean_window : float; rms_window : float; rate : float }

type result = {
  t_end : float;
  steps : int;
  queue_mean : float;
  avg_queue_mean : float;
  drop_mean : float;
  amplitude : float;
  period : float option;
  verdict : verdict;
  classes : class_stats array;
  rla_window : float;
  rla_rate : float;
  fairness_ratio : float;
  trajectory : Trajectory.t;
}

(* Solution vector: queue, RLA window, one histogram per TCP class. *)
type vec = { mutable q : float; mutable w : float; m : float array array }

let make_vec ~ncls ~bins =
  { q = 0.0; w = 1.0; m = Array.init ncls (fun _ -> Array.make bins 0.0) }

let zero_vec v =
  v.q <- 0.0;
  v.w <- 0.0;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0.0) v.m

(* dst <- base + s * k *)
let axpy ~dst ~base ~k s =
  dst.q <- base.q +. (s *. k.q);
  dst.w <- base.w +. (s *. k.w);
  Array.iteri
    (fun c bm ->
      let km = k.m.(c) and dm = dst.m.(c) in
      for i = 0 to Array.length bm - 1 do
        dm.(i) <- bm.(i) +. (s *. km.(i))
      done)
    base.m

(* y <- y + dt/6 (k1 + 2 k2 + 2 k3 + k4) *)
let rk4_combine ~y ~k1 ~k2 ~k3 ~k4 dt =
  let s = dt /. 6.0 in
  y.q <- y.q +. (s *. (k1.q +. (2.0 *. k2.q) +. (2.0 *. k3.q) +. k4.q));
  y.w <- y.w +. (s *. (k1.w +. (2.0 *. k2.w) +. (2.0 *. k3.w) +. k4.w));
  Array.iteri
    (fun c ym ->
      let a = k1.m.(c) and b = k2.m.(c) and cM = k3.m.(c) and d = k4.m.(c) in
      for i = 0 to Array.length ym - 1 do
        ym.(i) <-
          ym.(i) +. (s *. (a.(i) +. (2.0 *. b.(i)) +. (2.0 *. cM.(i)) +. d.(i)))
      done)
    y.m

let run (p : Params.t) =
  Params.validate p;
  let bins = p.Params.bins in
  let w_max = Params.w_max_auto p in
  let h = w_max /. float_of_int bins in
  let dt = Params.dt_auto p in
  let cap = p.Params.capacity in
  let buffer = p.Params.buffer in
  let classes = Array.of_list p.Params.tcp_classes in
  let ncls = Array.length classes in
  let y = make_vec ~ncls ~bins in
  let tmp = make_vec ~ncls ~bins in
  let k1 = make_vec ~ncls ~bins in
  let k2 = make_vec ~ncls ~bins in
  let k3 = make_vec ~ncls ~bins in
  let k4 = make_vec ~ncls ~bins in
  (* Start all windows small (post-slow-start handoff); the transient
     is discarded by [settle]. *)
  Array.iteri (fun c _ -> Array.blit (Dist.init_delta ~bins ~h 2.0) 0 y.m.(c) 0 bins) classes;
  y.q <- 0.0;
  y.w <- 2.0;
  (* Delay line over the frozen per-step drop probability; lookups
     clamp to the oldest retained entry (only reachable when the
     queueing delay exceeds the 2 s cap) and to t = 0 (the line is
     zero-filled: the system starts uncongested). *)
  let max_delay =
    let rtt_top =
      Array.fold_left
        (fun acc (c : Params.tcp_class) -> Float.max acc c.Params.rtt)
        (match p.Params.rla with Some r -> r.Params.rtt | None -> 0.0)
        classes
    in
    rtt_top +. Float.min 2.0 (buffer /. cap)
  in
  let hist_len = int_of_float (Float.ceil (max_delay /. dt)) + 2 in
  let hist = Array.make hist_len 0.0 in
  let pd_ago ~step delay =
    let back = int_of_float (Float.round (delay /. dt)) in
    let back = Stdlib.min back (Stdlib.min step (hist_len - 1)) in
    hist.((step - back) mod hist_len)
  in
  let pd_cls = Array.make (Stdlib.max 1 ncls) 0.0 in
  (* deriv: write dy/dt of [v] into [dv].  [pd] is the current frozen
     drop probability (queue thinning); [pd_cls]/[pd_rla] hold the
     round-trip-delayed probability each source population reacts to.
     Returns the aggregate arrival rate lambda (pkts/s, pre-drop)
     used for queue growth and the EWMA clock. *)
  let deriv ~pd ~pd_rla v dv =
    zero_vec dv;
    let q = Float.max 0.0 (Float.min buffer v.q) in
    let lambda = ref 0.0 in
    Array.iteri
      (fun c (cls : Params.tcp_class) ->
        let rtt = cls.Params.rtt +. (q /. cap) in
        let mw = Dist.mean ~h v.m.(c) in
        lambda := !lambda +. (float_of_int cls.Params.flows *. mw /. rtt);
        Dist.deriv ~h
          ~growth:((1.0 -. pd_cls.(c)) /. rtt)
          ~halve_coeff:(pd_cls.(c) /. rtt)
          v.m.(c) dv.m.(c))
      classes;
    (match p.Params.rla with
    | Some { Params.receivers; rtt } ->
        let rtt = rtt +. (q /. cap) in
        let w = Float.max 1.0 v.w in
        lambda := !lambda +. (w /. rtt);
        let dw =
          Analysis.Rla_model.drift_rate_common ~n:receivers ~p:pd_rla ~rtt w
        in
        dv.w <- (if v.w <= 1.0 && dw < 0.0 then 0.0 else dw)
    | None -> ());
    let dq = ((1.0 -. pd) *. !lambda) -. cap in
    dv.q <-
      (if (v.q <= 0.0 && dq < 0.0) || (v.q >= buffer && dq > 0.0) then 0.0
       else dq);
    !lambda
  in
  let traj = Trajectory.create () in
  let avg = ref 0.0 in
  let w_q = p.Params.red.Params.w_q in
  let steady_band =
    p.Params.steady_tol *. (p.Params.red.Params.max_th -. p.Params.red.Params.min_th)
  in
  let tail_window =
    Float.min
      (Float.max 2.0 (10.0 *. p.Params.sample_every))
      (Float.max p.Params.sample_every (p.Params.t_max -. p.Params.settle))
  in
  let t = ref 0.0 in
  let steps = ref 0 in
  let next_sample = ref 0.0 in
  let samples = ref 0 in
  let finished = ref false in
  while not !finished && !t < p.Params.t_max -. (0.5 *. dt) do
    (* Freeze this step's probabilities: current (queue thinning, delay
       line entry) and round-trip-delayed (source reactions). *)
    let pd = Params.drop_of_avg p !avg in
    hist.(!steps mod hist_len) <- pd;
    let q_now = Float.max 0.0 (Float.min buffer y.q) in
    Array.iteri
      (fun c (cls : Params.tcp_class) ->
        pd_cls.(c) <- pd_ago ~step:!steps (cls.Params.rtt +. (q_now /. cap)))
      classes;
    let pd_rla =
      match p.Params.rla with
      | Some r -> pd_ago ~step:!steps (r.Params.rtt +. (q_now /. cap))
      | None -> 0.0
    in
    (* Sample before stepping so t = 0 is recorded. *)
    if !t >= !next_sample -. (0.5 *. dt) then begin
      let lambda = deriv ~pd ~pd_rla y k1 in
      Trajectory.push traj ~time:!t ~queue:y.q ~avg:!avg ~drop:pd ~lambda
        ~rla_w:y.w;
      next_sample := !next_sample +. p.Params.sample_every;
      incr samples;
      (* Early exit once the tail is unambiguously flat. *)
      if
        !t >= p.Params.settle +. tail_window
        && !samples mod 25 = 0
        && (Trajectory.tail_stats traj ~window:tail_window).Trajectory.avg_amplitude
           < 0.25 *. steady_band
      then finished := true
    end;
    if not !finished then begin
      let l1 = deriv ~pd ~pd_rla y k1 in
      axpy ~dst:tmp ~base:y ~k:k1 (0.5 *. dt);
      let (_ : float) = deriv ~pd ~pd_rla tmp k2 in
      axpy ~dst:tmp ~base:y ~k:k2 (0.5 *. dt);
      let (_ : float) = deriv ~pd ~pd_rla tmp k3 in
      axpy ~dst:tmp ~base:y ~k:k3 dt;
      let l4 = deriv ~pd ~pd_rla tmp k4 in
      let q0 = y.q in
      rk4_combine ~y ~k1 ~k2 ~k3 ~k4 dt;
      y.q <- Float.max 0.0 (Float.min buffer y.q);
      y.w <- Float.max 1.0 (Float.min 1e7 y.w);
      Array.iter Dist.renormalize y.m;
      (* Exact EWMA update over the step: d(avg)/dt = w_q lambda
         (q - avg) with q and lambda held at their step midpoints. *)
      let q_mid = 0.5 *. (q0 +. y.q) in
      let l_mid = 0.5 *. (l1 +. l4) in
      avg := q_mid +. ((!avg -. q_mid) *. exp (-.(w_q *. l_mid *. dt)));
      t := !t +. dt;
      incr steps
    end
  done;
  let tail = Trajectory.tail_stats traj ~window:tail_window in
  let amplitude = tail.Trajectory.avg_amplitude in
  let verdict = if amplitude < steady_band then Steady else Oscillatory in
  let period =
    match verdict with
    | Steady -> None
    | Oscillatory -> Trajectory.tail_period traj ~window:tail_window
  in
  let q_tail = tail.Trajectory.queue_mean in
  let class_stats =
    Array.mapi
      (fun c (cls : Params.tcp_class) ->
        let rtt = cls.Params.rtt +. (q_tail /. cap) in
        let mass = y.m.(c) in
        let mw = Dist.mean ~h mass in
        { mean_window = mw; rms_window = Dist.rms ~h mass; rate = mw /. rtt })
      classes
  in
  let rla_window, rla_rate =
    match p.Params.rla with
    | None -> (0.0, 0.0)
    | Some { Params.receivers = _; rtt } ->
        (* Average the RLA window over the tail so limit cycles do not
           bias the rate toward the final phase. *)
        let n = Trajectory.length traj in
        let start = ref (n - 1) and sum = ref 0.0 and cnt = ref 0 in
        while
          !start > 0
          && Trajectory.time traj (!start - 1)
             >= Trajectory.time traj (n - 1) -. tail_window
        do
          decr start
        done;
        for i = !start to n - 1 do
          sum := !sum +. Trajectory.rla_w traj i;
          incr cnt
        done;
        let w = if !cnt > 0 then !sum /. float_of_int !cnt else y.w in
        (w, w /. (rtt +. (q_tail /. cap)))
  in
  let tcp_flows = Array.fold_left (fun a c -> a + c.Params.flows) 0 classes in
  let fairness_ratio =
    if tcp_flows = 0 || p.Params.rla = None then Float.nan
    else begin
      let total = ref 0.0 in
      Array.iteri
        (fun c (cls : Params.tcp_class) ->
          total := !total +. (float_of_int cls.Params.flows *. class_stats.(c).rate))
        classes;
      rla_rate /. (!total /. float_of_int tcp_flows)
    end
  in
  {
    t_end = !t;
    steps = !steps;
    queue_mean = tail.Trajectory.queue_mean;
    avg_queue_mean = tail.Trajectory.avg_mean;
    drop_mean = tail.Trajectory.drop_mean;
    amplitude;
    period;
    verdict;
    classes = class_stats;
    rla_window;
    rla_rate;
    fairness_ratio;
    trajectory = traj;
  }
