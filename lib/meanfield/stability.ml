(* Reynier-style linear stability of the RED fixed point.

   Quasi-static windows: at drop probability p each TCP flow sits at
   its drift zero pa_window(p) and the RLA at the zero of
   drift_rate_common; the accepted aggregate rate is

     Lambda(p, q) = (1-p) [ sum_c n_c W_c(p) / (rtt_c + q/C)
                            + W_rla(p) / (rtt_rla + q/C) ].

   The fixed point solves Lambda(p, q(p)) = C along the RED profile
   q(p) = avg_of_drop p.  Linearizing queue + EWMA around it with the
   window feedback delayed by one round-trip R gives

     d2r/dt2 + a dr/dt + G r(t - R) = 0,
     a = w_q lambda*   (EWMA tracking rate, lambda* = arrivals),
     G = -a g,  g = dLambda/d(avg) < 0,

   whose delay margin on the imaginary axis is

     omega^2 = (-a^2 + sqrt(a^4 + 4 G^2)) / 2,
     tau_crit = atan(a / omega) / omega;

   the fixed point is stable iff the rate-weighted round-trip time
   R* = (sum windows) / lambda* stays below tau_crit. *)

type fixed_point = {
  drop : float;
  queue : float;
  lambda : float;
  tcp_windows : float array;
  rla_window : float;
}

type t = {
  fp : fixed_point;
  congested : bool;
  pinned : bool;
  damping : float;
  gain : float;
  omega : float;
  tau_crit : float;
  rtt_star : float;
  stable : bool;
}

let p_floor = 1e-7

(* Equilibrium RLA window: zero of the (closed-form, O(1)) common-loss
   drift, clamped to the w >= 1 floor. *)
let rla_window_at ~receivers ~rtt p =
  let p = Float.max p p_floor in
  let f w = Analysis.Rla_model.drift_rate_common ~n:receivers ~p ~rtt w in
  if f 1.0 <= 0.0 then 1.0
  else begin
    let lo = ref 1.0 and hi = ref 2.0 in
    while f !hi > 0.0 && !hi < 1e9 do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid > 0.0 then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let windows_at (p : Params.t) pd =
  let tcp =
    Array.of_list
      (List.map
         (fun (_ : Params.tcp_class) -> Analysis.Tcp_model.pa_window_clamped pd)
         p.Params.tcp_classes)
  in
  let rla =
    match p.Params.rla with
    | None -> 0.0
    | Some { Params.receivers; rtt } -> rla_window_at ~receivers ~rtt pd
  in
  (tcp, rla)

(* Accepted aggregate rate at drop probability [pd] and queue [q]. *)
let accepted_rate (p : Params.t) ~pd ~q =
  let cap = p.Params.capacity in
  let tcp, rla = windows_at p pd in
  let rate = ref 0.0 in
  List.iteri
    (fun i (cls : Params.tcp_class) ->
      rate :=
        !rate +. (float_of_int cls.Params.flows *. tcp.(i) /. (cls.Params.rtt +. (q /. cap))))
    p.Params.tcp_classes;
  (match p.Params.rla with
  | None -> ()
  | Some { Params.receivers = _; rtt } ->
      rate := !rate +. (rla /. (rtt +. (q /. cap))));
  (1.0 -. pd) *. !rate

let bisect ~lo ~hi f =
  let lo = ref lo and hi = ref hi in
  for _ = 1 to 100 do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid > 0.0 then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let evaluate (p : Params.t) =
  Params.validate p;
  let cap = p.Params.capacity in
  let excess pd = accepted_rate p ~pd ~q:(Params.avg_of_drop p pd) -. cap in
  let p_hi = Params.drop_of_avg p (p.Params.red.Params.max_th -. 1e-9) in
  let congested = excess p_floor > 0.0 in
  let pinned = congested && excess p_hi > 0.0 in
  let pd, q =
    if not congested then (p_floor, 0.0)
    else if pinned then
      (* Demand exceeds capacity even at max_p: the averaged queue
         rides the max_th discontinuity.  Solve for the drop rate that
         balances capacity with the queue held at max_th. *)
      let q = p.Params.red.Params.max_th in
      let f pd = accepted_rate p ~pd ~q -. cap in
      (bisect ~lo:p_hi ~hi:(1.0 -. 1e-9) f, q)
    else (bisect ~lo:p_floor ~hi:p_hi excess, 0.0)
  in
  let q = if congested && not pinned then Params.avg_of_drop p pd else q in
  let tcp_windows, rla_window = windows_at p pd in
  let lambda = if congested then cap /. (1.0 -. pd) else accepted_rate p ~pd ~q /. (1.0 -. pd) in
  let fp = { drop = pd; queue = q; lambda; tcp_windows; rla_window } in
  (* Rate-weighted round trip: outstanding packets over arrival rate. *)
  let outstanding = ref 0.0 in
  List.iteri
    (fun i (cls : Params.tcp_class) ->
      outstanding := !outstanding +. (float_of_int cls.Params.flows *. tcp_windows.(i)))
    p.Params.tcp_classes;
  if p.Params.rla <> None then outstanding := !outstanding +. rla_window;
  let rtt_star = !outstanding /. Float.max lambda 1e-9 in
  let damping = p.Params.red.Params.w_q *. lambda in
  if not congested then
    {
      fp;
      congested;
      pinned;
      damping;
      gain = 0.0;
      omega = 0.0;
      tau_crit = infinity;
      rtt_star;
      stable = true;
    }
  else if pinned then
    (* The profile discontinuity at max_th acts as infinite gain. *)
    {
      fp;
      congested;
      pinned;
      damping;
      gain = infinity;
      omega = infinity;
      tau_crit = 0.0;
      rtt_star;
      stable = false;
    }
  else begin
    let slope = Params.drop_slope p q in
    let dp = Float.max 1e-8 (1e-3 *. pd) in
    let dp =
      Float.min dp (Float.min (pd -. p_floor) (p_hi -. pd)) |> Float.max 1e-9
    in
    let d_rate =
      (accepted_rate p ~pd:(pd +. dp) ~q -. accepted_rate p ~pd:(pd -. dp) ~q)
      /. (2.0 *. dp)
    in
    let g = d_rate *. slope in
    let gain = -.damping *. g in
    if gain <= 0.0 then
      {
        fp;
        congested;
        pinned;
        damping;
        gain;
        omega = 0.0;
        tau_crit = infinity;
        rtt_star;
        stable = true;
      }
    else begin
      let a = damping in
      let omega =
        sqrt (0.5 *. (-.(a *. a) +. sqrt ((a ** 4.0) +. (4.0 *. gain *. gain))))
      in
      let tau_crit = atan (a /. omega) /. omega in
      {
        fp;
        congested;
        pinned;
        damping;
        gain;
        omega;
        tau_crit;
        rtt_star;
        stable = rtt_star < tau_crit;
      }
    end
  end
