type red = { min_th : float; max_th : float; w_q : float; max_p : float }

type tcp_class = { flows : int; rtt : float }

type rla = { receivers : int; rtt : float }

type t = {
  capacity : float;
  buffer : float;
  red : red;
  tcp_classes : tcp_class list;
  rla : rla option;
  count_uniformization : bool;
  bins : int;
  w_max : float option;
  dt : float option;
  t_max : float;
  sample_every : float;
  settle : float;
  steady_tol : float;
}

let default_red = { min_th = 5.0; max_th = 15.0; w_q = 0.002; max_p = 0.1 }

let make ?(buffer = infinity) ?(red = default_red) ?rla
    ?(count_uniformization = true) ?(bins = 64) ?w_max ?dt ?(t_max = 30.0)
    ?(sample_every = 0.05) ?(settle = 10.0) ?(steady_tol = 0.02) ~capacity
    tcp_classes =
  {
    capacity;
    buffer;
    red;
    tcp_classes;
    rla;
    count_uniformization;
    bins;
    w_max;
    dt;
    t_max;
    sample_every;
    settle;
    steady_tol;
  }

let total_flows t =
  List.fold_left (fun acc c -> acc + c.flows) 0 t.tcp_classes
  + match t.rla with Some _ -> 1 | None -> 0

let fold_rtts t ~init ~f =
  let acc =
    List.fold_left (fun acc (c : tcp_class) -> f acc c.rtt) init t.tcp_classes
  in
  match t.rla with Some r -> f acc r.rtt | None -> acc

let min_rtt t = fold_rtts t ~init:infinity ~f:Float.min

let max_rtt t = fold_rtts t ~init:0.0 ~f:Float.max

let validate t =
  let fail msg = invalid_arg ("Meanfield.Params: " ^ msg) in
  if not (t.capacity > 0.0) then fail "capacity must be positive";
  if not (t.buffer > 0.0) then fail "buffer must be positive";
  if t.red.min_th < 0.0 || t.red.max_th <= t.red.min_th then
    fail "RED thresholds must satisfy 0 <= min_th < max_th";
  if not (t.red.w_q > 0.0 && t.red.w_q <= 1.0) then
    fail "w_q must lie in (0, 1]";
  if not (t.red.max_p > 0.0 && t.red.max_p <= 1.0) then
    fail "max_p must lie in (0, 1]";
  if t.tcp_classes = [] && t.rla = None then fail "no traffic classes";
  List.iter
    (fun c ->
      if c.flows <= 0 then fail "class flows must be positive";
      if not (c.rtt > 0.0) then fail "class rtt must be positive")
    t.tcp_classes;
  (match t.rla with
  | Some r ->
      if r.receivers <= 0 then fail "rla receivers must be positive";
      if not (r.rtt > 0.0) then fail "rla rtt must be positive"
  | None -> ());
  if t.bins < 4 then fail "need at least 4 window bins";
  (match t.w_max with
  | Some w when not (w > 1.0) -> fail "w_max must exceed 1"
  | _ -> ());
  (match t.dt with
  | Some dt when not (dt > 0.0) -> fail "dt must be positive"
  | _ -> ());
  if not (t.t_max > 0.0) then fail "t_max must be positive";
  if not (t.sample_every > 0.0 && t.sample_every < t.t_max) then
    fail "sample_every must lie in (0, t_max)";
  if not (t.settle >= 0.0 && t.settle < t.t_max) then
    fail "settle must lie in [0, t_max)";
  if not (t.steady_tol > 0.0) then fail "steady_tol must be positive"

(* Auto window ceiling: four times the bandwidth-delay fair share per
   flow, but never below 16 packets so the histogram keeps headroom
   even on tiny scenarios. *)
let w_max_auto t =
  match t.w_max with
  | Some w -> w
  | None ->
      let flows = float_of_int (Stdlib.max 1 (total_flows t)) in
      let share = t.capacity *. max_rtt t /. flows in
      Float.max 16.0 (4.0 *. share)

(* CFL-style step: the fastest transport rates are halving
   (p w / rtt <= w_max / rtt) and per-bin advection
   ((1/rtt) / h = bins / (rtt w_max)); keep |rate * dt| <= 0.5 so the
   fixed-step RK4 stays well inside its stability region.  The RED
   EWMA — the only genuinely stiff mode at large n — is integrated
   exactly outside the RK4 stages, so it does not constrain dt. *)
let dt_auto t =
  match t.dt with
  | Some dt -> dt
  | None ->
      let w_max = w_max_auto t in
      let fastest = Float.max w_max (float_of_int t.bins /. w_max) in
      0.5 *. min_rtt t /. fastest

(* RED drop profile: instantaneous drop probability as a function of
   the averaged queue.  [count_uniformization] models the simulator's
   count-based spacing (p_a = p_b / (1 - count p_b)), whose effective
   long-run drop rate is 2 p_b / (1 + p_b). *)
let drop_of_avg t avg =
  let { min_th; max_th; max_p; _ } = t.red in
  let p_b =
    if avg < min_th then 0.0
    else if avg >= max_th then 1.0
    else max_p *. (avg -. min_th) /. (max_th -. min_th)
  in
  if t.count_uniformization then 2.0 *. p_b /. (1.0 +. p_b)
  else Float.min 1.0 p_b

(* Inverse of [drop_of_avg] on the linear segment: the averaged queue
   at which the profile yields effective drop probability [p]. *)
let avg_of_drop t p =
  let { min_th; max_th; max_p; _ } = t.red in
  let p_b =
    if t.count_uniformization then p /. (2.0 -. p) else p
  in
  if p_b <= 0.0 then min_th
  else if p_b >= max_p then max_th
  else min_th +. (p_b /. max_p *. (max_th -. min_th))

(* Slope d(p_eff)/d(avg) on the linear segment, used by the stability
   criterion's gain computation. *)
let drop_slope t avg =
  let { min_th; max_th; w_q = _; max_p } = t.red in
  if avg <= min_th || avg >= max_th then 0.0
  else
    let slope_b = max_p /. (max_th -. min_th) in
    if t.count_uniformization then
      let p_b = max_p *. (avg -. min_th) /. (max_th -. min_th) in
      slope_b *. 2.0 /. ((1.0 +. p_b) *. (1.0 +. p_b))
    else slope_b
