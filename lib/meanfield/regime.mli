(** (w_q, max_p, n) stable/oscillatory regime map.

    A canonical scenario family for RED tuning studies: n TCP flows
    (100 pkt/s fair share each, 100 ms RTT) plus an n-receiver RLA
    session through a RED bottleneck whose thresholds scale linearly
    with n (5/15 packets at the n = 8 baseline).  Each grid point is
    classified twice — by integrating the mean field ({!Solver.run})
    and by the closed-form criterion ({!Stability.evaluate}) — and
    the two verdicts are compared. *)

type point = { w_q : float; max_p : float; n : int }

type classification = {
  point : point;
  verdict : Solver.verdict;  (** Integrated-trajectory verdict. *)
  amplitude : float;  (** Tail avg-queue amplitude (packets). *)
  period : float option;  (** Limit-cycle period when oscillatory. *)
  queue_mean : float;
  drop_mean : float;
  fairness_ratio : float;  (** RLA over mean TCP per-flow rate. *)
  criterion_stable : bool;  (** Closed-form criterion verdict. *)
  tau_crit : float;
  rtt_star : float;
  agree : bool;  (** Both verdicts coincide. *)
}

val share : float
(** Per-flow fair share (100 pkts/s). *)

val rtt : float
(** Common propagation RTT (0.1 s). *)

val params_for : ?bins:int -> ?t_max:float -> point -> Params.t
(** The canonical configuration at a grid point. *)

val classify : ?bins:int -> ?t_max:float -> point -> classification

val default_w_qs : float list

val default_max_ps : float list

val default_ns : int list

val default_grid : unit -> point list
(** Cartesian product of the default axes, n-major. *)
