(** Deterministic fixed-step RK4 integrator for the mean-field system.

    State: one window histogram per TCP class ({!Dist}), the RLA
    window (scalar ODE through
    {!Analysis.Rla_model.drift_rate_common}), the instantaneous queue
    (fluid balance, projected at 0 and at the buffer limit) and the
    RED averaged queue.  The drop probability is frozen per step from
    the averaged queue; the EWMA — the only stiff mode at large n —
    is advanced exactly with an exponential update around the step
    midpoint, so the step size is set by the window transport alone
    and the cost per model-second is independent of n.

    No RNG, no wall clock: two runs over equal {!Params.t} are
    bit-identical. *)

type verdict =
  | Steady  (** Tail avg-queue amplitude below the steadiness band. *)
  | Oscillatory  (** Persistent limit cycle on the averaged queue. *)

val verdict_to_string : verdict -> string

type class_stats = {
  mean_window : float;  (** E[W] of the class at the end of the run. *)
  rms_window : float;  (** sqrt(E[W^2]) — comparable to pa_window. *)
  rate : float;  (** Per-flow send rate (pkts/s) at the tail queue. *)
}

type result = {
  t_end : float;  (** Model time reached (early exit when steady). *)
  steps : int;
  queue_mean : float;  (** Instantaneous queue, tail average. *)
  avg_queue_mean : float;  (** RED averaged queue, tail average. *)
  drop_mean : float;  (** Effective drop probability, tail average. *)
  amplitude : float;  (** Half peak-to-peak of avg queue over tail. *)
  period : float option;  (** Limit-cycle period when oscillatory. *)
  verdict : verdict;
  classes : class_stats array;  (** Per TCP class, in input order. *)
  rla_window : float;  (** Tail-averaged RLA window (0 if absent). *)
  rla_rate : float;  (** RLA send rate (pkts/s; 0 if absent). *)
  fairness_ratio : float;
      (** RLA rate over the mean per-flow TCP rate; NaN when either
          side is absent. *)
  trajectory : Trajectory.t;
}

val run : Params.t -> result
(** Integrate to [t_max] (or early-exit once unambiguously steady)
    and summarize.  Raises [Invalid_argument] via {!Params.validate}
    on bad configurations. *)
