(** Reynier-style linear stability of the RED fixed point.

    Finds the quasi-static operating point (drop probability, queue,
    per-class windows) of a {!Params.t} configuration, then evaluates
    the delay-differential linearization

    {v d2r/dt2 + a dr/dt + G r(t - R) = 0 v}

    of queue + EWMA around it ([a = w_q * lambda], [G = -a *
    dLambda/davg]).  The critical delay is
    [tau_crit = atan(a/omega) / omega] with
    [omega^2 = (-a^2 + sqrt(a^4 + 4 G^2)) / 2]; the point is declared
    stable iff the rate-weighted round-trip time stays below it.
    Closed-form, O(1) in n — the analytic counterpart to integrating
    {!Solver.run} and inspecting the trajectory. *)

type fixed_point = {
  drop : float;  (** Effective drop probability p*. *)
  queue : float;  (** Queue = averaged queue at the fixed point. *)
  lambda : float;  (** Aggregate arrival rate (pre-drop, pkts/s). *)
  tcp_windows : float array;  (** Per-class quasi-static windows. *)
  rla_window : float;  (** RLA quasi-static window (0 if absent). *)
}

type t = {
  fp : fixed_point;
  congested : bool;
      (** Demand exceeds capacity at p -> 0; otherwise the queue stays
          empty and the point is trivially stable. *)
  pinned : bool;
      (** Demand exceeds capacity even at max_p: the averaged queue
          rides the max_th discontinuity (infinite gain, unstable). *)
  damping : float;  (** a = w_q * lambda. *)
  gain : float;  (** G = -a * dLambda/davg (>= 0 when congested). *)
  omega : float;  (** Hopf frequency (rad/s). *)
  tau_crit : float;  (** Critical feedback delay (s). *)
  rtt_star : float;  (** Rate-weighted round-trip time (s). *)
  stable : bool;  (** [rtt_star < tau_crit]. *)
}

val evaluate : Params.t -> t
(** Raises [Invalid_argument] via {!Params.validate}. *)
