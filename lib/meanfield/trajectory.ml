type t = {
  mutable len : int;
  mutable time : float array;
  mutable queue : float array;
  mutable avg : float array;
  mutable drop : float array;
  mutable lambda : float array;
  mutable rla_w : float array;
}

let create ?(capacity = 256) () =
  let mk () = Array.make (Stdlib.max 1 capacity) 0.0 in
  {
    len = 0;
    time = mk ();
    queue = mk ();
    avg = mk ();
    drop = mk ();
    lambda = mk ();
    rla_w = mk ();
  }

let grow field len = Array.append field (Array.make (Stdlib.max 1 len) 0.0)

let push t ~time ~queue ~avg ~drop ~lambda ~rla_w =
  if t.len = Array.length t.time then begin
    t.time <- grow t.time t.len;
    t.queue <- grow t.queue t.len;
    t.avg <- grow t.avg t.len;
    t.drop <- grow t.drop t.len;
    t.lambda <- grow t.lambda t.len;
    t.rla_w <- grow t.rla_w t.len
  end;
  let i = t.len in
  t.time.(i) <- time;
  t.queue.(i) <- queue;
  t.avg.(i) <- avg;
  t.drop.(i) <- drop;
  t.lambda.(i) <- lambda;
  t.rla_w.(i) <- rla_w;
  t.len <- i + 1

let length t = t.len

let time t i = t.time.(i)

let queue t i = t.queue.(i)

let avg t i = t.avg.(i)

let drop t i = t.drop.(i)

let rla_w t i = t.rla_w.(i)

(* First index inside the trailing [window] seconds. *)
let tail_start t ~window =
  if t.len = 0 then 0
  else begin
    let cutoff = t.time.(t.len - 1) -. window in
    let i = ref (t.len - 1) in
    while !i > 0 && t.time.(!i - 1) >= cutoff do
      decr i
    done;
    !i
  end

type tail = {
  avg_amplitude : float;
  avg_mean : float;
  queue_mean : float;
  drop_mean : float;
  lambda_mean : float;
}

let tail_stats t ~window =
  if t.len = 0 then
    {
      avg_amplitude = 0.0;
      avg_mean = 0.0;
      queue_mean = 0.0;
      drop_mean = 0.0;
      lambda_mean = 0.0;
    }
  else begin
    let start = tail_start t ~window in
    let n = t.len - start in
    let lo = ref infinity and hi = ref neg_infinity in
    let sa = ref 0.0 and sq = ref 0.0 and sd = ref 0.0 and sl = ref 0.0 in
    for i = start to t.len - 1 do
      let a = t.avg.(i) in
      if a < !lo then lo := a;
      if a > !hi then hi := a;
      sa := !sa +. a;
      sq := !sq +. t.queue.(i);
      sd := !sd +. t.drop.(i);
      sl := !sl +. t.lambda.(i)
    done;
    let nf = float_of_int n in
    {
      avg_amplitude = 0.5 *. (!hi -. !lo);
      avg_mean = !sa /. nf;
      queue_mean = !sq /. nf;
      drop_mean = !sd /. nf;
      lambda_mean = !sl /. nf;
    }
  end

(* Limit-cycle period estimate: mean time between successive upward
   crossings of the tail mean by the averaged-queue series. *)
let tail_period t ~window =
  if t.len < 3 then None
  else begin
    let start = tail_start t ~window in
    let stats = tail_stats t ~window in
    let level = stats.avg_mean in
    let first = ref nan and last = ref nan and crossings = ref 0 in
    for i = start + 1 to t.len - 1 do
      if t.avg.(i - 1) < level && t.avg.(i) >= level then begin
        incr crossings;
        if Float.is_nan !first then first := t.time.(i);
        last := t.time.(i)
      end
    done;
    if !crossings >= 2 then
      Some ((!last -. !first) /. float_of_int (!crossings - 1))
    else None
  end

let pp_csv ppf t =
  Format.fprintf ppf "t,queue,avg_queue,drop_p,lambda,rla_window@.";
  for i = 0 to t.len - 1 do
    Format.fprintf ppf "%.6f,%.6f,%.6f,%.6f,%.6f,%.6f@." t.time.(i)
      t.queue.(i) t.avg.(i) t.drop.(i) t.lambda.(i) t.rla_w.(i)
  done

let to_csv_string t =
  let buf = Buffer.create (64 * (t.len + 1)) in
  let ppf = Format.formatter_of_buffer buf in
  pp_csv ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
