(** Discretized per-class window distributions.

    A distribution is a plain [float array] of probability mass over
    [bins] cells of width [h]; cell [i] represents window
    [(i + 0.5) * h].  The transport operator discretizes the
    McDonald–Reynier window PDE: upward advection for additive
    increase, a mass-conserving halving kernel for multiplicative
    decrease. *)

val center : h:float -> int -> float
(** Window value at the center of bin [i]. *)

val init_delta : bins:int -> h:float -> float -> float array
(** Unit point mass at a given window, linearly split between the two
    bracketing bins (clamped to the histogram range). *)

val total : float array -> float
(** Total mass. *)

val mean : h:float -> float array -> float
(** First moment E[W] (assumes unit mass). *)

val rms : h:float -> float array -> float
(** sqrt(E[W^2]); at transport stationarity this equals
    [Tcp_model.pa_window p] exactly, since the drift balance gives
    E[W^2] = 2 (1 - p) / p. *)

val deriv :
  h:float -> growth:float -> halve_coeff:float -> float array ->
  float array -> unit
(** [deriv ~h ~growth ~halve_coeff m dm] accumulates dm/dt of the
    transport into [dm] (caller zeroes it first): upwind advection at
    velocity [growth] (windows/s) plus halving at per-window rate
    [halve_coeff] (so bin [i] halves at rate [halve_coeff * w_i]).
    Conserves total mass exactly; the top bin has no advective
    outflow and bin 0 does not halve (the w >= 1 floor). *)

val renormalize : float array -> unit
(** Clip negative mass and rescale to total 1 in place. *)
