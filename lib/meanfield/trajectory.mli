(** Sampled solver trajectories.

    A growable record of (time, instantaneous queue, averaged queue,
    effective drop probability, aggregate arrival rate, RLA window)
    samples, with tail statistics for steadiness / limit-cycle
    detection and a deterministic CSV exporter. *)

type t

val create : ?capacity:int -> unit -> t

val push :
  t ->
  time:float ->
  queue:float ->
  avg:float ->
  drop:float ->
  lambda:float ->
  rla_w:float ->
  unit

val length : t -> int

val time : t -> int -> float

val queue : t -> int -> float

val avg : t -> int -> float

val drop : t -> int -> float

val rla_w : t -> int -> float

type tail = {
  avg_amplitude : float;
      (** Half peak-to-peak of the averaged queue over the tail. *)
  avg_mean : float;
  queue_mean : float;
  drop_mean : float;
  lambda_mean : float;
}

val tail_stats : t -> window:float -> tail
(** Statistics over the trailing [window] seconds of samples. *)

val tail_period : t -> window:float -> float option
(** Limit-cycle period from upward mean-crossings of the averaged
    queue over the tail; [None] if fewer than two crossings. *)

val pp_csv : Format.formatter -> t -> unit
(** CSV with header [t,queue,avg_queue,drop_p,lambda,rla_window]; all
    fields printed as [%.6f], so equal trajectories render to
    byte-identical text. *)

val to_csv_string : t -> string
