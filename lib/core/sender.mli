(** The Random Listening Algorithm sender (section 3.3 of the paper).

    One multicast sender feeding [N] receivers over a distribution
    tree.  The sender keeps a SACK scoreboard per receiver; losses on a
    branch within [2*srtt_i] of each other collapse into one congestion
    signal; upon a congestion signal from a troubled receiver the
    congestion window is halved

    - deterministically, when no cut happened for
      [2 * awnd * srtt_i] seconds (the {e forced cut}), or
    - with probability [pthresh = 1/num_trouble_rcvr] (restricted
      topology) or [(srtt_i/srtt_max)^k / num_trouble_rcvr]
      (generalized RLA), otherwise.

    The window advances by [1/cwnd] for every packet acknowledged by
    {e all} receivers; lost packets are retransmitted by multicast when
    more than [rexmit_thresh] receivers request them and by unicast
    otherwise. *)

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  receivers:Net.Packet.addr list ->
  ?params:Params.t ->
  ?start_at:float ->
  ?endpoints:Net.Packet.addr list ->
  ?tree:[ `Install | `Preinstalled of Net.Packet.group ] ->
  unit ->
  t
(** Allocates a flow and a multicast group, installs the distribution
    tree (so {!Net.Network.install_routes} must already have run),
    creates one {!Receiver} endpoint per receiver node and starts
    sending at [start_at] (default 0, plus a small random stagger).

    Sharded runs override the defaults: [?tree:(`Preinstalled g)] skips
    both group allocation and tree installation (the caller built the
    distribution tree — possibly spanning several networks — and every
    member has already joined [g]), and [?endpoints] restricts the
    locally created {!Receiver} endpoints to the listed subset of
    [receivers] (the rest live on other shards and are created there
    with this sender's {!flow}).  The defaults ([`Install], all
    receivers local) leave single-network behavior bit-identical to
    before these options existed.

    If the network has a metrics registry installed
    ({!Net.Network.set_registry}) at creation time, the session
    publishes ["rla.flow<N>.cwnd"] and ["rla.flow<N>.bytes_acked"]
    series (aligned sample times, taken on ack/timeout processing),
    ["rla.flow<N>.window_cuts"] / ["rla.flow<N>.signals"] counters, and
    [window_cut] / [forced_cut] events.  Probing is passive: runs are
    bit-identical with or without it. *)

val flow : t -> Net.Packet.flow

val group : t -> Net.Packet.group

val n_receivers : t -> int
(** Receiver slots the session tracks (active or dropped; a re-joined
    address reuses its old slot). *)

val add_receiver : t -> Net.Packet.addr -> bool
(** Runtime membership join — the counterpart of {!drop_receiver}.
    Grafts the node onto the distribution tree, creates a receiver
    endpoint acknowledging from the sender's current sequence frontier,
    and starts counting the newcomer in the acked-by-all window rules
    and in [num_trouble_rcvr] (so [pthresh] reflects the new membership
    immediately).  Packets sent before the join are not the newcomer's
    responsibility.  Returns [false] when the address is already an
    active member; raises [Invalid_argument] for an unknown address or
    the session source. *)

val drop_receiver : t -> Net.Packet.addr -> bool
(** The slow-receiver option (section 4.3): stop listening to this
    receiver.  Its acknowledgments are ignored from now on, it no
    longer gates the acked-by-all window advance or retransmission
    decisions, and outstanding packets complete against the remaining
    receivers.  Returns [false] for an unknown or already-dropped
    address; raises [Invalid_argument] when it would drop the last
    active receiver. *)

val active_receivers : t -> Net.Packet.addr list

val cwnd : t -> float

val awnd : t -> float
(** Moving average of the window size. *)

val num_trouble_rcvr : t -> int
(** Latest troubled-receiver count (recomputed on each signal). *)

val pthresh_for : t -> Net.Packet.addr -> float
(** The cut probability that a congestion signal from this receiver
    would face right now (test/diagnostic hook). *)

val max_reach_all : t -> int
(** Packets delivered to every receiver (contiguous prefix). *)

val min_last_ack : t -> int
(** Smallest cumulative ack across receivers. *)

val congestion_signals : t -> int
(** Total congestion signals detected (all receivers). *)

val signals_per_receiver : t -> (Net.Packet.addr * int) list

val window_cuts : t -> int

val forced_cuts : t -> int

val timeouts : t -> int

val rexmits_multicast : t -> int

val rexmits_unicast : t -> int

val receiver_endpoints : t -> Receiver.t list

val reset_measurement : t -> unit
(** Restart the measurement window (the paper discards the first
    100 s): cwnd time-average, RTT stats, and all counter baselines. *)

type snapshot = {
  time : float;
  delivered : int;  (** Packets newly reaching all receivers. *)
  throughput : float;
      (** All-receiver goodput, pkt/s over the measurement window. *)
  send_rate : float;
      (** Packets put on the wire per second (new data + multicast and
          unicast retransmissions) — the session's bandwidth share of a
          bottleneck branch, which is what the paper's tables report
          (~ cwnd / RTT). *)
  cwnd_now : float;
  cwnd_avg : float;  (** Time-weighted. *)
  rtt_avg : float;
      (** Mean per-acknowledgment round-trip time across receivers
          (comparable to the competing TCPs' RTT, as in figure 7). *)
  rtt_all_avg : float;
      (** Mean time from first transmission to all-receiver coverage,
          over packets that needed no retransmission (the [RTT_RLA] of
          equation 5: between 1x and 2x the branch RTT). *)
  congestion_signals : int;
  window_cuts : int;
  forced_cuts : int;
  timeouts : int;
  rexmits : int;
  signals_per_receiver : (Net.Packet.addr * int) list;
}

val snapshot : t -> snapshot

type rexmit_target = To_group | To_receivers of Net.Packet.addr list
(** Where a queued retransmission will go: the whole multicast group,
    or unicast copies to the listed receivers. *)

type coverage_state = {
  c_seq : int;
  c_covered : int;  (** receivers that have acked this packet *)
  c_rexmitted : bool;
  c_sent_at : float;
}

type state = {
  s_rcvrs : Rcv_state.state list;  (** slot order *)
  s_n_active : int;
  s_endpoints : Receiver.state list;  (** endpoint list order *)
  s_rng : int64;
  s_rto : Tcp.Rto.state;
  s_cwnd : float;
  s_ssthresh : float;
  s_awnd : Stats.Ewma.state;
  s_last_window_cut : float;
  s_next_seq : int;
  s_mra : int;
  s_coverage : coverage_state list;  (** ascending seq *)
  s_pending : int list;  (** ascending *)
  s_rexmit_queue : (int * rexmit_target) list;  (** queue order *)
  s_queued : int list;  (** ascending *)
  s_timer : Sim.Scheduler.event_id option;
  s_start_event : Sim.Scheduler.event_id option;
  s_num_trouble : int;
  s_window_cuts : int;
  s_forced_cuts : int;
  s_timeouts : int;
  s_signals : int;
  s_rexmits_multicast : int;
  s_rexmits_unicast : int;
  s_sent_new : int;
  s_cwnd_avg : Stats.Time_avg.state;
  s_rtt : Stats.Welford.state;
  s_rtt_acks : Stats.Welford.state;
  s_meas_time : float;
  s_meas_mra : int;
  s_meas_signals : int;
  s_meas_cuts : int;
  s_meas_forced : int;
  s_meas_timeouts : int;
  s_meas_rexmits : int;
  s_meas_sent_new : int;
  s_meas_signals_per : int list;  (** slot order *)
}

val capture : t -> state
(** Everything mutable about the session, including its receiver
    endpoints and pending timer/start events, in a serializable form.
    The captured session must have the same membership history as the
    one being restored into. *)

val restore : t -> state -> unit
(** Overwrite the session state and re-arm the retransmission timer and
    start event under their original ids.  Must run after
    [Sim.Scheduler.restore]; raises [Invalid_argument] when receiver
    slot or endpoint counts disagree with the capture. *)
