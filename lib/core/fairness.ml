type branch = { mu : float; tcp_flows : int }

type gateway = Red | Droptail

let share b =
  if b.mu <= 0.0 then invalid_arg "Fairness.share: non-positive capacity";
  if b.tcp_flows < 0 then invalid_arg "Fairness.share: negative flow count";
  b.mu /. float_of_int (b.tcp_flows + 1)

let soft_bottleneck = function
  | [] -> invalid_arg "Fairness.soft_bottleneck: empty topology"
  | first :: rest ->
      let rec scan i best best_share = function
        | [] -> best
        | b :: tl ->
            let s = share b in
            if s < best_share then scan (i + 1) i s tl
            else scan (i + 1) best best_share tl
      in
      scan 1 0 (share first) rest

let fair_share branches =
  let i = soft_bottleneck branches in
  share (List.nth branches i)

let essential_bounds gateway ~n =
  if n <= 0 then invalid_arg "Fairness.essential_bounds: n must be positive";
  match gateway with
  | Red -> (1.0 /. 3.0, sqrt (3.0 *. float_of_int n))
  | Droptail -> (0.25, 2.0 *. float_of_int n)

let measured_ratio ~rla_throughput ~tcp_throughput =
  if tcp_throughput <= 0.0 then infinity
  else rla_throughput /. tcp_throughput

let is_essentially_fair gateway ~n ~rla_throughput ~tcp_throughput =
  let a, b = essential_bounds gateway ~n in
  let c = measured_ratio ~rla_throughput ~tcp_throughput in
  c > a && c < b

let jain = function
  | [] -> invalid_arg "Fairness.jain: empty allocation list"
  | xs ->
      let n = float_of_int (List.length xs) in
      let sum = List.fold_left ( +. ) 0.0 xs in
      let sumsq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if sumsq <= 0.0 then 1.0 else sum *. sum /. (n *. sumsq)
