type t = {
  net : Net.Network.t;
  node : Net.Node.t;
  flow : Net.Packet.flow;
  sender : Net.Packet.addr;
  rng : Sim.Rng.t;
  ack_jitter : float;
  (* Delayed acknowledgments in flight, keyed by event id; the payload
     snapshot (cum/sack) happens at fire time, so only the data packet's
     echo timestamp and ECN bit need remembering for restore. *)
  pending_acks : (Sim.Scheduler.event_id, float * bool) Hashtbl.t;
  ooo : (int, unit) Hashtbl.t;
  mutable recent : int list;
  mutable expected : int;
  mutable received_total : int;
  mutable duplicates : int;
  mutable rexmits_received : int;
}

let node_id t = Net.Node.id t.node

let expected t = t.expected

let received_total t = t.received_total

let duplicates t = t.duplicates

let rexmits_received t = t.rexmits_received

let block_around t seq =
  let lo = ref seq in
  while Hashtbl.mem t.ooo (!lo - 1) do
    decr lo
  done;
  let hi = ref (seq + 1) in
  while Hashtbl.mem t.ooo !hi do
    incr hi
  done;
  { Tcp.Wire.block_lo = !lo; block_hi = !hi }

let sack_blocks t =
  let rec build acc seen = function
    | [] -> List.rev acc
    | _ when List.length acc >= Tcp.Wire.max_sack_blocks -> List.rev acc
    | rep :: rest ->
        if rep < t.expected || not (Hashtbl.mem t.ooo rep) then
          build acc seen rest
        else begin
          let block = block_around t rep in
          if List.mem block.Tcp.Wire.block_lo seen then build acc seen rest
          else build (block :: acc) (block.Tcp.Wire.block_lo :: seen) rest
        end
  in
  build [] [] t.recent

(* Acknowledgments leave after a small random processing delay: an
   equal-RTT multicast tree would otherwise fire all receivers' acks at
   the same instant, and the synchronized burst picks the same overflow
   victims at the reverse bottleneck on every round (see
   {!Params.ack_jitter}).  The ack snapshot (cum/sack/echo) is taken at
   send time so it reflects everything received meanwhile. *)
let emit_ack t ~echo ~ece =
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:(Net.Node.id t.node)
      ~dst:(Net.Packet.Unicast t.sender) ~size:Wire.ack_size
      ~payload:
        (Wire.Rla_ack
           {
             rcvr = Net.Node.id t.node;
             cum_ack = t.expected;
             blocks = sack_blocks t;
             echo;
             ece;
           })
  in
  Net.Network.send t.net pkt

let send_ack t ~echo ~ece =
  if t.ack_jitter <= 0.0 then emit_ack t ~echo ~ece
  else begin
    let rid = ref (-1) in
    let id =
      Sim.Scheduler.schedule_after
        (Net.Network.scheduler t.net)
        (Sim.Rng.float t.rng t.ack_jitter)
        (fun () ->
          Hashtbl.remove t.pending_acks !rid;
          emit_ack t ~echo ~ece)
    in
    rid := id;
    Hashtbl.replace t.pending_acks id (echo, ece)
  end

let on_data t ~seq ~sent_at ~rexmit ~ecn =
  t.received_total <- t.received_total + 1;
  if rexmit then t.rexmits_received <- t.rexmits_received + 1;
  if seq < t.expected || Hashtbl.mem t.ooo seq then
    t.duplicates <- t.duplicates + 1
  else if seq = t.expected then begin
    t.expected <- t.expected + 1;
    while Hashtbl.mem t.ooo t.expected do
      Hashtbl.remove t.ooo t.expected;
      t.expected <- t.expected + 1
    done;
    t.recent <- List.filter (fun r -> r >= t.expected) t.recent
  end
  else begin
    Hashtbl.replace t.ooo seq ();
    t.recent <- seq :: List.filter (fun r -> r <> seq) t.recent;
    if List.length t.recent > 4 * Tcp.Wire.max_sack_blocks then
      t.recent <-
        List.filteri (fun i _ -> i < 4 * Tcp.Wire.max_sack_blocks) t.recent
  end;
  send_ack t ~echo:sent_at ~ece:ecn

let create ~net ~node ~flow ~sender ?(ack_jitter = 0.002) ?(start = 0) () =
  let node = Net.Network.node net node in
  let t =
    {
      net;
      node;
      flow;
      sender;
      rng = Net.Network.fork_rng net;
      ack_jitter;
      pending_acks = Hashtbl.create 8;
      ooo = Hashtbl.create 64;
      recent = [];
      expected = start;
      received_total = 0;
      duplicates = 0;
      rexmits_received = 0;
    }
  in
  Net.Node.attach node ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Rla_data { seq; sent_at; rexmit } ->
          on_data t ~seq ~sent_at ~rexmit ~ecn:pkt.Net.Packet.ecn
      | _ -> ());
  t

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_rng : int64;
  s_ooo : int list;  (* ascending *)
  s_recent : int list;
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
  s_rexmits_received : int;
  s_pending_acks : (Sim.Scheduler.event_id * float * bool) list;
      (* (id, echo, ece), ascending id *)
}

let capture t =
  {
    s_rng = Sim.Rng.state t.rng;
    s_ooo =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.ooo []
      |> List.sort Int.compare;
    s_recent = t.recent;
    s_expected = t.expected;
    s_received_total = t.received_total;
    s_duplicates = t.duplicates;
    s_rexmits_received = t.rexmits_received;
    s_pending_acks =
      Hashtbl.fold
        (fun id (echo, ece) acc -> (id, echo, ece) :: acc)
        t.pending_acks []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b);
  }

let restore t st =
  Sim.Rng.set_state t.rng st.s_rng;
  Hashtbl.reset t.ooo;
  List.iter (fun seq -> Hashtbl.replace t.ooo seq ()) st.s_ooo;
  t.recent <- st.s_recent;
  t.expected <- st.s_expected;
  t.received_total <- st.s_received_total;
  t.duplicates <- st.s_duplicates;
  t.rexmits_received <- st.s_rexmits_received;
  Hashtbl.reset t.pending_acks;
  let sched = Net.Network.scheduler t.net in
  List.iter
    (fun (id, echo, ece) ->
      Hashtbl.replace t.pending_acks id (echo, ece);
      Sim.Scheduler.rearm sched ~id (fun () ->
          Hashtbl.remove t.pending_acks id;
          emit_ack t ~echo ~ece))
    st.s_pending_acks
