type t = {
  addr : Net.Packet.addr;
  params : Params.t;
  session_start : float;
  board : Tcp.Scoreboard.t;
  srtt : Stats.Ewma.t;
  interval : Stats.Ewma.t;
  mutable cperiod_start : float;
  mutable last_signal : float;
  mutable signals : int;
  mutable acks : int;
  mutable active : bool;
}

let create ~addr ~params ~session_start ?(board_start = 0) () =
  {
    addr;
    params;
    session_start;
    board = Tcp.Scoreboard.create ~start:board_start ();
    srtt = Stats.Ewma.create ~weight:params.Params.srtt_weight;
    interval = Stats.Ewma.create ~weight:params.Params.interval_ewma_weight;
    cperiod_start = neg_infinity;
    last_signal = session_start;
    signals = 0;
    acks = 0;
    active = true;
  }

let addr t = t.addr

let board t = t.board

let active t = t.active

let deactivate t = t.active <- false

let srtt t = Stats.Ewma.value t.srtt

let observe_rtt t sample = Stats.Ewma.update t.srtt sample

let signals t = t.signals

let acks t = t.acks

let count_ack t = t.acks <- t.acks + 1

let last_signal t = t.last_signal

let register_losses t ~now =
  let window = t.params.Params.group_rtt_factor *. srtt t in
  if now -. t.cperiod_start <= window then false
  else begin
    t.cperiod_start <- now;
    (* The first signal's "interval" is measured from session start,
       which bootstraps the EWMA without a special case. *)
    Stats.Ewma.update t.interval (now -. t.last_signal);
    t.last_signal <- now;
    t.signals <- t.signals + 1;
    true
  end

let mean_signal_interval t ~now =
  if t.signals = 0 then infinity
  else
    (* Aging: a receiver silent for longer than its historical interval
       should not keep a stale "frequent loss" status. *)
    Stdlib.max (Stats.Ewma.value t.interval) (now -. t.last_signal)

let is_troubled t ~now ~min_interval ~eta =
  t.signals > 0 && mean_signal_interval t ~now <= eta *. min_interval

type state = {
  s_board : Tcp.Scoreboard.state;
  s_srtt : Stats.Ewma.state;
  s_interval : Stats.Ewma.state;
  s_cperiod_start : float;
  s_last_signal : float;
  s_signals : int;
  s_acks : int;
  s_active : bool;
}

let capture t =
  {
    s_board = Tcp.Scoreboard.capture t.board;
    s_srtt = Stats.Ewma.capture t.srtt;
    s_interval = Stats.Ewma.capture t.interval;
    s_cperiod_start = t.cperiod_start;
    s_last_signal = t.last_signal;
    s_signals = t.signals;
    s_acks = t.acks;
    s_active = t.active;
  }

let restore t st =
  Tcp.Scoreboard.restore t.board st.s_board;
  Stats.Ewma.restore t.srtt st.s_srtt;
  Stats.Ewma.restore t.interval st.s_interval;
  t.cperiod_start <- st.s_cperiod_start;
  t.last_signal <- st.s_last_signal;
  t.signals <- st.s_signals;
  t.acks <- st.s_acks;
  t.active <- st.s_active
