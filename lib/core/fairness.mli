(** The paper's fairness vocabulary (section 2.2 and section 4).

    A restricted topology is described by its branches: branch [i] has
    bottleneck capacity [mu_i] (pkt/s) and [m_i] competing TCP flows.
    The soft bottleneck is the branch minimising [mu_i / (m_i + 1)];
    absolute fairness means the multicast session gets exactly that
    share; essential fairness bounds the multicast throughput within
    [a * tcp, b * tcp] of the soft-bottleneck TCP throughput. *)

type branch = {
  mu : float;  (** Bottleneck capacity along the branch, pkt/s. *)
  tcp_flows : int;  (** Competing TCP connections on the branch. *)
}

type gateway = Red | Droptail

val share : branch -> float
(** [mu / (m + 1)]: the equal share on this branch. *)

val soft_bottleneck : branch list -> int
(** Index of the branch with the smallest equal share; raises
    [Invalid_argument] on an empty list. *)

val fair_share : branch list -> float
(** [min_i mu_i / (m_i + 1)] — the absolutely fair multicast
    throughput. *)

val essential_bounds : gateway -> n:int -> float * float
(** [(a, b)] of Theorem I (RED: a = 1/3, b = sqrt(3n)) or Theorem II
    (drop-tail with phase effects eliminated: a = 1/4, b = 2n), for
    [n] receivers persistently reporting congestion. *)

val is_essentially_fair :
  gateway -> n:int -> rla_throughput:float -> tcp_throughput:float -> bool
(** Check a measured pair of throughputs against the theorem bounds. *)

val measured_ratio : rla_throughput:float -> tcp_throughput:float -> float
(** The empirical [c] such that [rla = c * tcp]; [infinity] when the
    TCP throughput is zero. *)

val jain : float list -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)] over per-branch
    allocations: 1 when all equal, [1/n] when one branch takes
    everything.  An all-zero allocation is treated as perfectly fair
    (index 1).  Raises [Invalid_argument] on the empty list. *)
