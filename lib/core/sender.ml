type coverage = {
  mutable covered : int;  (* receivers that have this packet *)
  mutable rexmitted : bool;
  sent_at : float;
}

type rexmit_target = To_group | To_receivers of Net.Packet.addr list

(* Cached observability handles; sampling happens inside ack/timeout
   processing only (never from scheduled events or RNG draws), so
   instrumented and bare runs are bit-identical. *)
type taps = {
  reg : Obs.Registry.t;
  source : string;
  cwnd_s : Obs.Series.t;
  bytes_s : Obs.Series.t;
  cuts_c : Obs.Registry.counter;
  signals_c : Obs.Registry.counter;
}

type t = {
  net : Net.Network.t;
  params : Params.t;
  src : Net.Packet.addr;
  flow : Net.Packet.flow;
  group : Net.Packet.group;
  mutable rcvrs : Rcv_state.t array;
  mutable n_active : int;
  mutable endpoints : Receiver.t list;
  rng : Sim.Rng.t;
  rto : Tcp.Rto.t;
  (* window state *)
  mutable cwnd : float;
  mutable ssthresh : float;
  awnd : Stats.Ewma.t;
  mutable last_window_cut : float;
  mutable next_seq : int;
  mutable mra : int;  (* max_reach_all: contiguous all-receiver frontier *)
  coverage : (int, coverage) Hashtbl.t;
  (* retransmission machinery *)
  pending : (int, unit) Hashtbl.t;  (* lost somewhere, decision not made *)
  mutable rexmit_queue : (int * rexmit_target) list;
  queued : (int, unit) Hashtbl.t;
  mutable timer : Sim.Scheduler.event_id option;
  mutable timeout_thunk : unit -> unit;
      (* one closure shared by every (re)arm, not one per arm *)
  mutable start_event : Sim.Scheduler.event_id option;
  (* counters *)
  mutable num_trouble : int;
  mutable window_cuts : int;
  mutable forced_cuts : int;
  mutable timeouts : int;
  mutable signals : int;
  mutable rexmits_multicast : int;
  mutable rexmits_unicast : int;
  mutable sent_new : int;
  cwnd_avg : Stats.Time_avg.t;
  rtt : Stats.Welford.t ref;  (* send -> covered-by-all, no-rexmit packets *)
  rtt_acks : Stats.Welford.t ref;  (* per-acknowledgment samples *)
  (* measurement baselines *)
  mutable meas_time : float;
  mutable meas_mra : int;
  mutable meas_signals : int;
  mutable meas_cuts : int;
  mutable meas_forced : int;
  mutable meas_timeouts : int;
  mutable meas_rexmits : int;
  mutable meas_sent_new : int;
  mutable meas_signals_per : int array;
  (* Derived O(1) aggregates over the active scoreboards (see
     [recompute_min_ack]/[recompute_pipes]); never captured — restore
     recomputes them. *)
  mutable mla_value : int;  (* min active high_ack *)
  mutable mla_count : int;  (* active boards sitting at [mla_value] *)
  mutable pipe_counts : int array;  (* active boards per pipe value *)
  mutable pipe_max : int;
  mutable taps : taps option;
}

let flow t = t.flow

let group t = t.group

let n_receivers t = Array.length t.rcvrs

let cwnd t = t.cwnd

let awnd t = Stats.Ewma.value t.awnd

let num_trouble_rcvr t = t.num_trouble

let max_reach_all t = t.mra

let congestion_signals t = t.signals

let window_cuts t = t.window_cuts

let forced_cuts t = t.forced_cuts

let timeouts t = t.timeouts

let rexmits_multicast t = t.rexmits_multicast

let rexmits_unicast t = t.rexmits_unicast

let receiver_endpoints t = t.endpoints

let now t = Net.Network.now t.net

let fold_active t f init =
  Array.fold_left
    (fun acc r -> if Rcv_state.active r then f acc r else acc)
    init t.rcvrs

(* [min_last_ack]/[max_pipe] gate every window-room check — once per
   new packet and retransmission — so the original O(n) folds cost
   O(n^2) per ack on large groups.  They are kept as exact caches
   instead: every scoreboard mutation site below refreshes them
   incrementally, and [create]/[restore]/membership changes recompute
   from scratch.  The caches are derived state only — the captured
   state format is unchanged and the values always equal the folds. *)

let recompute_min_ack t =
  let v =
    fold_active t
      (fun acc r -> Stdlib.min acc (Tcp.Scoreboard.high_ack (Rcv_state.board r)))
      max_int
  in
  t.mla_value <- v;
  t.mla_count <-
    fold_active t
      (fun acc r ->
        if Tcp.Scoreboard.high_ack (Rcv_state.board r) = v then acc + 1 else acc)
      0

(* An active board's cumulative ack moved [before -> after].  [before]
   can never be below the cached minimum, so only a departure from the
   minimum bucket can change it. *)
let note_high_ack_advance t ~before ~after =
  if after <> before && before = t.mla_value then begin
    t.mla_count <- t.mla_count - 1;
    if t.mla_count <= 0 then recompute_min_ack t
  end

let pipe_bucket_incr t p =
  if p >= Array.length t.pipe_counts then begin
    let grown =
      Array.make (Stdlib.max (p + 1) (Stdlib.max 8 (2 * Array.length t.pipe_counts))) 0
    in
    Array.blit t.pipe_counts 0 grown 0 (Array.length t.pipe_counts);
    t.pipe_counts <- grown
  end;
  t.pipe_counts.(p) <- t.pipe_counts.(p) + 1;
  if p > t.pipe_max then t.pipe_max <- p

let pipe_bucket_decr t p =
  t.pipe_counts.(p) <- t.pipe_counts.(p) - 1;
  if p = t.pipe_max && t.pipe_counts.(p) = 0 then begin
    let m = ref t.pipe_max in
    while !m > 0 && t.pipe_counts.(!m) = 0 do
      decr m
    done;
    t.pipe_max <- !m
  end

(* Incr before decr: when the pipe grows this raises the max directly
   and the vacated bucket never triggers a downward scan. *)
let note_pipe_change t ~before ~after =
  if after <> before then begin
    pipe_bucket_incr t after;
    pipe_bucket_decr t before
  end

let recompute_pipes t =
  Array.fill t.pipe_counts 0 (Array.length t.pipe_counts) 0;
  t.pipe_max <- 0;
  Array.iter
    (fun r ->
      if Rcv_state.active r then
        pipe_bucket_incr t (Tcp.Scoreboard.pipe (Rcv_state.board r)))
    t.rcvrs

let min_last_ack t = t.mla_value

let signals_per_receiver t =
  Array.to_list
    (Array.map (fun r -> (Rcv_state.addr r, Rcv_state.signals r)) t.rcvrs)

let set_cwnd t value =
  t.cwnd <- Stdlib.max 1.0 value;
  Stats.Time_avg.update t.cwnd_avg ~time:(now t) ~value:t.cwnd

(* Aligned (cwnd, bytes_acked-by-all) probe — both series get a sample
   at every call point, so their decimated sample times stay identical
   and exporters can zip them row by row. *)
let probe_flow t =
  match t.taps with
  | None -> ()
  | Some taps ->
      let time = now t in
      Obs.Series.add taps.cwnd_s ~time t.cwnd;
      Obs.Series.add taps.bytes_s ~time
        (float_of_int (t.mra * t.params.Params.data_size))

let probe_cut t ~forced =
  match t.taps with
  | None -> ()
  | Some taps ->
      Obs.Registry.incr taps.cuts_c;
      Obs.Registry.emit taps.reg ~time:(now t) ~source:taps.source
        ~event:(if forced then "forced_cut" else "window_cut")
        ~value:t.cwnd

(* --- troubled receivers and the cut probability ------------------- *)

let min_signal_interval t =
  fold_active t
    (fun acc r -> Stdlib.min acc (Rcv_state.mean_signal_interval r ~now:(now t)))
    infinity

let recount_troubled t =
  match t.params.Params.trouble_counting with
  | Params.All_receivers -> t.num_trouble <- Stdlib.max 1 t.n_active
  | Params.Dynamic ->
      let min_int = min_signal_interval t in
      let count =
        fold_active t
          (fun acc r ->
            if
              Rcv_state.is_troubled r ~now:(now t) ~min_interval:min_int
                ~eta:t.params.Params.eta
            then acc + 1
            else acc)
          0
      in
      t.num_trouble <- Stdlib.max 1 count

let max_srtt t =
  fold_active t (fun acc r -> Stdlib.max acc (Rcv_state.srtt r)) 0.0

let pthresh t r =
  let scale =
    match t.params.Params.rtt_scaling with
    | Params.Equal_rtt -> 1.0
    | Params.Rtt_power k ->
        let m = max_srtt t in
        if m <= 0.0 then 1.0 else (Rcv_state.srtt r /. m) ** k
  in
  scale /. float_of_int t.num_trouble

let pthresh_for t addr =
  match Array.find_opt (fun r -> Rcv_state.addr r = addr) t.rcvrs with
  | None -> invalid_arg "Sender.pthresh_for: unknown receiver"
  | Some r -> pthresh t r

(* --- transmission -------------------------------------------------- *)

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some id ->
      Sim.Scheduler.cancel (Net.Network.scheduler t.net) id;
      t.timer <- None

let send_packet t ~seq ~dst ~rexmit =
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src ~dst
      ~size:t.params.Params.data_size
      ~payload:(Wire.Rla_data { seq; sent_at = now t; rexmit })
  in
  Net.Network.send t.net pkt

(* The slowest active branch limits the send rate: the largest pipe
   over the per-receiver scoreboards (cached, see above). *)
let max_pipe t = t.pipe_max

let send_rexmit t seq target =
  Hashtbl.remove t.queued seq;
  (match Hashtbl.find_opt t.coverage seq with
  | Some c -> c.rexmitted <- true
  | None -> ());
  let requesters =
    match target with
    | To_group ->
        List.filter Rcv_state.active (Array.to_list t.rcvrs)
    | To_receivers addrs ->
        List.filter_map
          (fun a ->
            Array.find_opt
              (fun r -> Rcv_state.active r && Rcv_state.addr r = a)
              t.rcvrs)
          addrs
  in
  (* Mark the retransmission only on boards that still consider the
     packet lost (acks may have arrived since the decision). *)
  List.iter
    (fun r ->
      let board = Rcv_state.board r in
      if
        Tcp.Scoreboard.is_lost board seq
        && not (Tcp.Scoreboard.is_rexmitted board seq)
      then begin
        let p0 = Tcp.Scoreboard.pipe board in
        Tcp.Scoreboard.mark_retransmitted ~at:(now t) board seq;
        note_pipe_change t ~before:p0 ~after:(Tcp.Scoreboard.pipe board)
      end)
    requesters;
  match target with
  | To_group ->
      t.rexmits_multicast <- t.rexmits_multicast + 1;
      send_packet t ~seq ~dst:(Net.Packet.Multicast t.group) ~rexmit:true
  | To_receivers _ ->
      (* Unicast only to requesters that are still active members: a
         receiver dropped between the decision and this send must not
         keep drawing retransmissions (or inflating the unicast
         counter). *)
      List.iter
        (fun r ->
          t.rexmits_unicast <- t.rexmits_unicast + 1;
          send_packet t ~seq
            ~dst:(Net.Packet.Unicast (Rcv_state.addr r))
            ~rexmit:true)
        requesters

let rec arm_timer t =
  if t.timer = None && t.next_seq > t.mra then begin
    let id =
      Sim.Scheduler.schedule_after
        (Net.Network.scheduler t.net)
        (Tcp.Rto.timeout t.rto) t.timeout_thunk
    in
    t.timer <- Some id
  end

and restart_timer t =
  cancel_timer t;
  arm_timer t

and try_send t =
  let budget = ref t.params.Params.max_burst in
  let window_room () =
    max_pipe t < int_of_float t.cwnd
    && t.next_seq - min_last_ack t < t.params.Params.rcv_buffer
  in
  while !budget > 0 && window_room () do
    match t.rexmit_queue with
    | (seq, target) :: rest ->
        t.rexmit_queue <- rest;
        send_rexmit t seq target;
        decr budget
    | [] ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Array.iter
          (fun r ->
            let board = Rcv_state.board r in
            if Rcv_state.active r then begin
              let p0 = Tcp.Scoreboard.pipe board in
              let s = Tcp.Scoreboard.register_send board in
              assert (s = seq);
              note_pipe_change t ~before:p0 ~after:(Tcp.Scoreboard.pipe board)
            end
            else begin
              let s = Tcp.Scoreboard.register_send board in
              assert (s = seq)
            end)
          t.rcvrs;
        Hashtbl.replace t.coverage seq
          { covered = 0; rexmitted = false; sent_at = now t };
        t.sent_new <- t.sent_new + 1;
        send_packet t ~seq ~dst:(Net.Packet.Multicast t.group) ~rexmit:false;
        decr budget
  done;
  arm_timer t

and on_timeout t =
  if t.next_seq > t.mra then begin
    t.timeouts <- t.timeouts + 1;
    t.window_cuts <- t.window_cuts + 1;
    t.ssthresh <- Stdlib.max 2.0 (t.cwnd /. 2.0);
    set_cwnd t 1.0;
    probe_cut t ~forced:false;
    probe_flow t;
    t.last_window_cut <- now t;
    Tcp.Rto.backoff t.rto;
    (* Everything unacknowledged anywhere is presumed lost; rebuild the
       retransmission plan from scratch. *)
    Array.iter
      (fun r -> ignore (Tcp.Scoreboard.mark_all_lost (Rcv_state.board r)))
      t.rcvrs;
    recompute_pipes t;
    t.rexmit_queue <- [];
    Hashtbl.reset t.queued;
    Hashtbl.reset t.pending;
    for seq = t.mra to t.next_seq - 1 do
      if Hashtbl.mem t.coverage seq then schedule_rexmit_decision t seq
    done
  end;
  try_send t

(* Decide (or defer) how to retransmit [seq].  The paper's rule: wait
   until every receiver has reported on the packet, then multicast if
   more than [rexmit_thresh] receivers request it, unicast otherwise. *)
and schedule_rexmit_decision t seq =
  if not (Hashtbl.mem t.queued seq) then begin
    let all_reported = ref true in
    let requesters = ref [] in
    Array.iter
      (fun r ->
        if Rcv_state.active r then begin
          let board = Rcv_state.board r in
          if Tcp.Scoreboard.is_lost board seq then
            requesters := Rcv_state.addr r :: !requesters
          else begin
            let covered =
              seq < Tcp.Scoreboard.high_ack board
              || Tcp.Scoreboard.is_sacked board seq
            in
            if not covered then all_reported := false
          end
        end)
      t.rcvrs;
    if not !all_reported then Hashtbl.replace t.pending seq ()
    else begin
      Hashtbl.remove t.pending seq;
      match !requesters with
      | [] -> ()
      | addrs ->
          let target =
            if List.length addrs > t.params.Params.rexmit_thresh then To_group
            else To_receivers addrs
          in
          t.rexmit_queue <- t.rexmit_queue @ [ (seq, target) ];
          Hashtbl.replace t.queued seq ()
    end
  end

(* --- acknowledgment processing ------------------------------------- *)

let advance_frontier t =
  let n = t.n_active in
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.coverage t.mra with
    | Some c when c.covered >= n ->
        if not c.rexmitted then
          Stats.Welford.add !(t.rtt) (now t -. c.sent_at);
        Hashtbl.remove t.coverage t.mra;
        t.mra <- t.mra + 1;
        progressed := true
    | Some _ | None -> continue := false
  done;
  if !progressed then restart_timer t

(* A packet newly covered by one receiver; on full coverage the window
   opens (rule 4: cwnd <- cwnd + 1/cwnd once ACKed by all). *)
let cover t seq =
  match Hashtbl.find_opt t.coverage seq with
  | None -> ()
  | Some c ->
      c.covered <- c.covered + 1;
      if c.covered >= t.n_active then begin
        if t.cwnd < t.ssthresh then set_cwnd t (t.cwnd +. 1.0)
        else set_cwnd t (t.cwnd +. (1.0 /. t.cwnd))
      end

let congestion_action t r =
  recount_troubled t;
  let acts =
    match t.params.Params.trouble_counting with
    | Params.All_receivers -> true
    | Params.Dynamic ->
        let min_int = min_signal_interval t in
        Rcv_state.is_troubled r ~now:(now t) ~min_interval:min_int
          ~eta:t.params.Params.eta
  in
  if acts then begin
    (* The horizon guards the session-wide cut cadence, so it uses the
       session round-trip time (the largest branch srtt); keying it on
       the signaling receiver's srtt would let a nearby receiver force
       cuts an order of magnitude too often on heterogeneous trees
       (the paper observes zero forced cuts in its figure-10 runs). *)
    let horizon =
      t.params.Params.forced_cut_factor *. Stats.Ewma.value t.awnd
      *. Stdlib.max (Rcv_state.srtt r) (max_srtt t)
    in
    let do_cut ~forced =
      t.window_cuts <- t.window_cuts + 1;
      if forced then t.forced_cuts <- t.forced_cuts + 1;
      t.ssthresh <- Stdlib.max 2.0 (t.cwnd /. 2.0);
      set_cwnd t t.ssthresh;
      probe_cut t ~forced;
      t.last_window_cut <- now t
    in
    if now t -. t.last_window_cut > horizon then do_cut ~forced:true
    else if Sim.Rng.uniform t.rng <= pthresh t r then do_cut ~forced:false
  end

let on_ack t r ~cum_ack ~blocks ~echo ~ece =
  Rcv_state.count_ack r;
  let rtt_sample = now t -. echo in
  Rcv_state.observe_rtt r rtt_sample;
  Stats.Welford.add !(t.rtt_acks) rtt_sample;
  Tcp.Rto.sample t.rto rtt_sample;
  let board = Rcv_state.board r in
  let high_ack0 = Tcp.Scoreboard.high_ack board in
  let pipe0 = Tcp.Scoreboard.pipe board in
  let fresh_cum = Tcp.Scoreboard.advance_cum_seqs board cum_ack in
  let fresh_sacked =
    List.concat_map
      (fun { Tcp.Wire.block_lo; block_hi } ->
        Tcp.Scoreboard.mark_sacked_seqs board ~lo:block_lo ~hi:block_hi)
      blocks
  in
  List.iter (cover t) fresh_cum;
  List.iter (cover t) fresh_sacked;
  advance_frontier t;
  (* Update the moving average of the window on every ack. *)
  Stats.Ewma.update t.awnd t.cwnd;
  let losses = Tcp.Scoreboard.detect_losses board ~dupthresh:t.params.Params.dupthresh in
  List.iter (fun seq -> schedule_rexmit_decision t seq) losses;
  (* Re-request retransmissions that have themselves gone unanswered
     for ~2 srtt on this branch. *)
  let srtt_i = Rcv_state.srtt r in
  if srtt_i > 0.0 && t.params.Params.rexmit_timeout_factor < infinity then begin
    let before = now t -. (t.params.Params.rexmit_timeout_factor *. srtt_i) in
    let revived = Tcp.Scoreboard.expire_rexmits board ~before in
    List.iter (fun seq -> schedule_rexmit_decision t seq) revived
  end;
  (* Fresh coverage may complete the report set of pending packets. *)
  if Hashtbl.length t.pending > 0 then begin
    let pending_seqs = Hashtbl.fold (fun seq () acc -> seq :: acc) t.pending [] in
    List.iter
      (fun seq ->
        Hashtbl.remove t.pending seq;
        if seq >= t.mra then schedule_rexmit_decision t seq)
      (List.sort Int.compare pending_seqs)
  end;
  (* An ECN echo is a congestion indication exactly like a detected
     loss: grouped per congestion period, then randomly listened to. *)
  if (losses <> [] || ece) && Rcv_state.register_losses r ~now:(now t) then begin
    t.signals <- t.signals + 1;
    (match t.taps with
    | None -> ()
    | Some taps -> Obs.Registry.incr taps.signals_c);
    congestion_action t r
  end;
  (* All of this ack's mutations to [board] are done; bring the cached
     aggregates back in sync before [try_send] reads them. *)
  note_high_ack_advance t ~before:high_ack0
    ~after:(Tcp.Scoreboard.high_ack board);
  note_pipe_change t ~before:pipe0 ~after:(Tcp.Scoreboard.pipe board);
  probe_flow t;
  try_send t

(* Stop listening to one receiver — the slow-receiver option of
   section 4.3.  Coverage counts for outstanding packets are rebuilt
   from the remaining active scoreboards so the acked-by-all frontier
   can move past the dropped receiver's holes. *)
let drop_receiver t addr =
  match
    Array.find_opt
      (fun r -> Rcv_state.active r && Rcv_state.addr r = addr)
      t.rcvrs
  with
  | None -> false
  | Some victim ->
      if t.n_active <= 1 then
        invalid_arg "Sender.drop_receiver: cannot drop the last receiver";
      Rcv_state.deactivate victim;
      t.n_active <- t.n_active - 1;
      (* Recompute coverage over the survivors; grow the window for
         packets this completes (rule 4 still applies to them). *)
      let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.coverage [] in
      List.iter
        (fun seq ->
          match Hashtbl.find_opt t.coverage seq with
          | None -> ()
          | Some c ->
              c.covered <-
                fold_active t
                  (fun acc r ->
                    let board = Rcv_state.board r in
                    if
                      seq < Tcp.Scoreboard.high_ack board
                      || Tcp.Scoreboard.is_sacked board seq
                    then acc + 1
                    else acc)
                  0)
        (List.sort Int.compare seqs);
      advance_frontier t;
      recount_troubled t;
      (* Retransmission decisions that were waiting on the victim may
         now be ready. *)
      let pending_seqs =
        Hashtbl.fold (fun seq () acc -> seq :: acc) t.pending []
      in
      List.iter
        (fun seq ->
          Hashtbl.remove t.pending seq;
          if seq >= t.mra then schedule_rexmit_decision t seq)
        (List.sort Int.compare pending_seqs);
      recompute_min_ack t;
      recompute_pipes t;
      try_send t;
      true

(* Runtime join — the membership counterpart of [drop_receiver].  The
   newcomer is only responsible for packets from the current sequence
   frontier on: its endpoint acknowledges from [next_seq] and its
   scoreboard starts there, so it neither stalls on — nor gates —
   packets sent before it joined.  Re-joining an address that was
   dropped earlier reuses its slot with fresh state (fresh scoreboard,
   srtt, signal history). *)
let add_receiver t addr =
  match
    Array.find_opt
      (fun r -> Rcv_state.active r && Rcv_state.addr r = addr)
      t.rcvrs
  with
  | Some _ -> false
  | None ->
      if addr = t.src then
        invalid_arg "Sender.add_receiver: source cannot join its own group";
      (match Net.Network.node t.net addr with
      | exception Not_found ->
          invalid_arg "Sender.add_receiver: unknown address"
      | _ -> ());
      Net.Network.graft_multicast t.net ~group:t.group ~src:t.src ~member:addr;
      let endpoint =
        Receiver.create ~net:t.net ~node:addr ~flow:t.flow ~sender:t.src
          ~ack_jitter:t.params.Params.ack_jitter ~start:t.next_seq ()
      in
      t.endpoints <- t.endpoints @ [ endpoint ];
      let state =
        Rcv_state.create ~addr ~params:t.params ~session_start:(now t)
          ~board_start:t.next_seq ()
      in
      (match Array.find_index (fun r -> Rcv_state.addr r = addr) t.rcvrs with
      | Some i ->
          t.rcvrs.(i) <- state;
          t.meas_signals_per.(i) <- 0
      | None ->
          t.rcvrs <- Array.append t.rcvrs [| state |];
          t.meas_signals_per <- Array.append t.meas_signals_per [| 0 |]);
      t.n_active <- t.n_active + 1;
      (* Outstanding packets predate the join; the newcomer's board
         already counts them delivered (seq < its high_ack), so their
         coverage counts grow by one to keep the [covered >= n_active]
         frontier/window rules consistent. *)
      Hashtbl.iter (fun _ c -> c.covered <- c.covered + 1) t.coverage;
      recount_troubled t;
      recompute_min_ack t;
      recompute_pipes t;
      try_send t;
      true

let active_receivers t =
  fold_active t (fun acc r -> Rcv_state.addr r :: acc) [] |> List.rev

(* --- lifecycle ------------------------------------------------------ *)

type snapshot = {
  time : float;
  delivered : int;
  throughput : float;
  send_rate : float;
  cwnd_now : float;
  cwnd_avg : float;
  rtt_avg : float;
  rtt_all_avg : float;
  congestion_signals : int;
  window_cuts : int;
  forced_cuts : int;
  timeouts : int;
  rexmits : int;
  signals_per_receiver : (Net.Packet.addr * int) list;
}

let reset_measurement (t : t) =
  Stats.Time_avg.reset t.cwnd_avg ~start:(now t) ~value:t.cwnd;
  t.rtt := Stats.Welford.create ();
  t.rtt_acks := Stats.Welford.create ();
  t.meas_sent_new <- t.sent_new;
  t.meas_time <- now t;
  t.meas_mra <- t.mra;
  t.meas_signals <- t.signals;
  t.meas_cuts <- t.window_cuts;
  t.meas_forced <- t.forced_cuts;
  t.meas_timeouts <- t.timeouts;
  t.meas_rexmits <- t.rexmits_multicast + t.rexmits_unicast;
  t.meas_signals_per <- Array.map Rcv_state.signals t.rcvrs

let snapshot t =
  let span = now t -. t.meas_time in
  let delivered = t.mra - t.meas_mra in
  let sent =
    t.sent_new - t.meas_sent_new + t.rexmits_multicast + t.rexmits_unicast
    - t.meas_rexmits
  in
  let rate n = if span <= 0.0 then 0.0 else float_of_int n /. span in
  {
    time = now t;
    delivered;
    throughput = rate delivered;
    send_rate = rate sent;
    cwnd_now = t.cwnd;
    cwnd_avg = Stats.Time_avg.average t.cwnd_avg ~upto:(now t);
    rtt_avg = Stats.Welford.mean !(t.rtt_acks);
    rtt_all_avg = Stats.Welford.mean !(t.rtt);
    congestion_signals = t.signals - t.meas_signals;
    window_cuts = t.window_cuts - t.meas_cuts;
    forced_cuts = t.forced_cuts - t.meas_forced;
    timeouts = t.timeouts - t.meas_timeouts;
    rexmits = t.rexmits_multicast + t.rexmits_unicast - t.meas_rexmits;
    signals_per_receiver =
      Array.to_list
        (Array.mapi
           (fun i r ->
             (Rcv_state.addr r, Rcv_state.signals r - t.meas_signals_per.(i)))
           t.rcvrs);
  }

let create ~net ~src ~receivers ?(params = Params.default) ?(start_at = 0.0)
    ?endpoints:endpoint_addrs ?(tree = `Install) () =
  if receivers = [] then invalid_arg "Sender.create: no receivers";
  let flow = Net.Network.fresh_flow net in
  let group =
    match tree with
    | `Install ->
        let group = Net.Network.fresh_group net in
        Net.Network.install_multicast net ~group ~src ~members:receivers;
        group
    | `Preinstalled group -> group
  in
  let endpoints =
    List.map
      (fun node ->
        Receiver.create ~net ~node ~flow ~sender:src
          ~ack_jitter:params.Params.ack_jitter ())
      (Option.value endpoint_addrs ~default:receivers)
  in
  let start = Net.Network.now net +. start_at in
  let t =
    {
      net;
      params;
      src;
      flow;
      group;
      rcvrs =
        Array.of_list
          (List.map
             (fun addr ->
               Rcv_state.create ~addr ~params ~session_start:start ())
             receivers);
      n_active = List.length receivers;
      endpoints;
      rng = Net.Network.fork_rng net;
      rto = Tcp.Rto.create ~min_rto:params.Params.min_rto ();
      cwnd = Stdlib.max 1.0 params.Params.init_cwnd;
      ssthresh = params.Params.init_ssthresh;
      awnd = Stats.Ewma.create ~weight:params.Params.awnd_weight;
      last_window_cut = start;
      next_seq = 0;
      mra = 0;
      coverage = Hashtbl.create 1024;
      pending = Hashtbl.create 64;
      rexmit_queue = [];
      queued = Hashtbl.create 64;
      timer = None;
      timeout_thunk = ignore;
      start_event = None;
      num_trouble = 1;
      window_cuts = 0;
      forced_cuts = 0;
      timeouts = 0;
      signals = 0;
      rexmits_multicast = 0;
      rexmits_unicast = 0;
      sent_new = 0;
      cwnd_avg =
        Stats.Time_avg.create ~start ~value:(Stdlib.max 1.0 params.Params.init_cwnd);
      rtt = ref (Stats.Welford.create ());
      rtt_acks = ref (Stats.Welford.create ());
      meas_time = start;
      meas_mra = 0;
      meas_signals = 0;
      meas_cuts = 0;
      meas_forced = 0;
      meas_timeouts = 0;
      meas_rexmits = 0;
      meas_sent_new = 0;
      meas_signals_per = Array.make (List.length receivers) 0;
      mla_value = 0;
      mla_count = 0;
      pipe_counts = [||];
      pipe_max = 0;
      taps = None;
    }
  in
  recompute_min_ack t;
  recompute_pipes t;
  t.timeout_thunk <-
    (fun () ->
      t.timer <- None;
      on_timeout t);
  (match Net.Network.observer net with
  | None -> ()
  | Some reg ->
      let source = Printf.sprintf "rla.flow%d" flow in
      t.taps <-
        Some
          {
            reg;
            source;
            cwnd_s = Obs.Registry.series reg (source ^ ".cwnd");
            bytes_s = Obs.Registry.series reg (source ^ ".bytes_acked");
            cuts_c = Obs.Registry.counter reg (source ^ ".window_cuts");
            signals_c = Obs.Registry.counter reg (source ^ ".signals");
          };
      probe_flow t);
  Stats.Ewma.update t.awnd t.cwnd;
  Net.Node.attach (Net.Network.node net src) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Wire.Rla_ack { rcvr; cum_ack; blocks; echo; ece } -> (
          (* Dispatch to the *active* state for that address: after a
             drop + re-join the array holds the stale entry too, and
             acks must reach the live one. *)
          match
            Array.find_opt
              (fun r -> Rcv_state.active r && Rcv_state.addr r = rcvr)
              t.rcvrs
          with
          | Some r -> on_ack t r ~cum_ack ~blocks ~echo ~ece
          | None -> ())
      | _ -> ());
  let stagger = Sim.Rng.float t.rng 0.1 in
  t.start_event <-
    Some
      (Sim.Scheduler.schedule_at (Net.Network.scheduler net) (start +. stagger)
         (fun () ->
           t.start_event <- None;
           try_send t));
  t

(* --- checkpoint/restore -------------------------------------------- *)

type coverage_state = {
  c_seq : int;
  c_covered : int;
  c_rexmitted : bool;
  c_sent_at : float;
}

type state = {
  s_rcvrs : Rcv_state.state list;  (* slot order *)
  s_n_active : int;
  s_endpoints : Receiver.state list;  (* endpoint list order *)
  s_rng : int64;
  s_rto : Tcp.Rto.state;
  s_cwnd : float;
  s_ssthresh : float;
  s_awnd : Stats.Ewma.state;
  s_last_window_cut : float;
  s_next_seq : int;
  s_mra : int;
  s_coverage : coverage_state list;  (* ascending seq *)
  s_pending : int list;  (* ascending *)
  s_rexmit_queue : (int * rexmit_target) list;  (* queue order *)
  s_queued : int list;  (* ascending *)
  s_timer : Sim.Scheduler.event_id option;
  s_start_event : Sim.Scheduler.event_id option;
  s_num_trouble : int;
  s_window_cuts : int;
  s_forced_cuts : int;
  s_timeouts : int;
  s_signals : int;
  s_rexmits_multicast : int;
  s_rexmits_unicast : int;
  s_sent_new : int;
  s_cwnd_avg : Stats.Time_avg.state;
  s_rtt : Stats.Welford.state;
  s_rtt_acks : Stats.Welford.state;
  s_meas_time : float;
  s_meas_mra : int;
  s_meas_signals : int;
  s_meas_cuts : int;
  s_meas_forced : int;
  s_meas_timeouts : int;
  s_meas_rexmits : int;
  s_meas_sent_new : int;
  s_meas_signals_per : int list;  (* slot order *)
}

let capture t =
  {
    s_rcvrs = Array.to_list (Array.map Rcv_state.capture t.rcvrs);
    s_n_active = t.n_active;
    s_endpoints = List.map Receiver.capture t.endpoints;
    s_rng = Sim.Rng.state t.rng;
    s_rto = Tcp.Rto.capture t.rto;
    s_cwnd = t.cwnd;
    s_ssthresh = t.ssthresh;
    s_awnd = Stats.Ewma.capture t.awnd;
    s_last_window_cut = t.last_window_cut;
    s_next_seq = t.next_seq;
    s_mra = t.mra;
    s_coverage =
      Hashtbl.fold
        (fun seq (c : coverage) acc ->
          {
            c_seq = seq;
            c_covered = c.covered;
            c_rexmitted = c.rexmitted;
            c_sent_at = c.sent_at;
          }
          :: acc)
        t.coverage []
      |> List.sort (fun a b -> Int.compare a.c_seq b.c_seq);
    s_pending =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.pending []
      |> List.sort Int.compare;
    s_rexmit_queue = t.rexmit_queue;
    s_queued =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.queued []
      |> List.sort Int.compare;
    s_timer = t.timer;
    s_start_event = t.start_event;
    s_num_trouble = t.num_trouble;
    s_window_cuts = t.window_cuts;
    s_forced_cuts = t.forced_cuts;
    s_timeouts = t.timeouts;
    s_signals = t.signals;
    s_rexmits_multicast = t.rexmits_multicast;
    s_rexmits_unicast = t.rexmits_unicast;
    s_sent_new = t.sent_new;
    s_cwnd_avg = Stats.Time_avg.capture t.cwnd_avg;
    s_rtt = Stats.Welford.capture !(t.rtt);
    s_rtt_acks = Stats.Welford.capture !(t.rtt_acks);
    s_meas_time = t.meas_time;
    s_meas_mra = t.meas_mra;
    s_meas_signals = t.meas_signals;
    s_meas_cuts = t.meas_cuts;
    s_meas_forced = t.meas_forced;
    s_meas_timeouts = t.meas_timeouts;
    s_meas_rexmits = t.meas_rexmits;
    s_meas_sent_new = t.meas_sent_new;
    s_meas_signals_per = Array.to_list t.meas_signals_per;
  }

let restore t st =
  if List.length st.s_rcvrs <> Array.length t.rcvrs then
    invalid_arg
      (Printf.sprintf "Sender.restore: %d receiver slots captured, %d present"
         (List.length st.s_rcvrs) (Array.length t.rcvrs));
  if List.length st.s_endpoints <> List.length t.endpoints then
    invalid_arg
      (Printf.sprintf "Sender.restore: %d endpoints captured, %d present"
         (List.length st.s_endpoints)
         (List.length t.endpoints));
  List.iteri (fun i s -> Rcv_state.restore t.rcvrs.(i) s) st.s_rcvrs;
  t.n_active <- st.s_n_active;
  List.iter2 Receiver.restore t.endpoints st.s_endpoints;
  Sim.Rng.set_state t.rng st.s_rng;
  Tcp.Rto.restore t.rto st.s_rto;
  t.cwnd <- st.s_cwnd;
  t.ssthresh <- st.s_ssthresh;
  Stats.Ewma.restore t.awnd st.s_awnd;
  t.last_window_cut <- st.s_last_window_cut;
  t.next_seq <- st.s_next_seq;
  t.mra <- st.s_mra;
  Hashtbl.reset t.coverage;
  List.iter
    (fun c ->
      Hashtbl.replace t.coverage c.c_seq
        { covered = c.c_covered; rexmitted = c.c_rexmitted; sent_at = c.c_sent_at })
    st.s_coverage;
  Hashtbl.reset t.pending;
  List.iter (fun seq -> Hashtbl.replace t.pending seq ()) st.s_pending;
  t.rexmit_queue <- st.s_rexmit_queue;
  Hashtbl.reset t.queued;
  List.iter (fun seq -> Hashtbl.replace t.queued seq ()) st.s_queued;
  t.timer <- st.s_timer;
  t.start_event <- st.s_start_event;
  let sched = Net.Network.scheduler t.net in
  (match st.s_timer with
  | None -> ()
  | Some id -> Sim.Scheduler.rearm sched ~id t.timeout_thunk);
  (match st.s_start_event with
  | None -> ()
  | Some id ->
      Sim.Scheduler.rearm sched ~id (fun () ->
          t.start_event <- None;
          try_send t));
  t.num_trouble <- st.s_num_trouble;
  t.window_cuts <- st.s_window_cuts;
  t.forced_cuts <- st.s_forced_cuts;
  t.timeouts <- st.s_timeouts;
  t.signals <- st.s_signals;
  t.rexmits_multicast <- st.s_rexmits_multicast;
  t.rexmits_unicast <- st.s_rexmits_unicast;
  t.sent_new <- st.s_sent_new;
  Stats.Time_avg.restore t.cwnd_avg st.s_cwnd_avg;
  Stats.Welford.restore !(t.rtt) st.s_rtt;
  Stats.Welford.restore !(t.rtt_acks) st.s_rtt_acks;
  t.meas_time <- st.s_meas_time;
  t.meas_mra <- st.s_meas_mra;
  t.meas_signals <- st.s_meas_signals;
  t.meas_cuts <- st.s_meas_cuts;
  t.meas_forced <- st.s_meas_forced;
  t.meas_timeouts <- st.s_meas_timeouts;
  t.meas_rexmits <- st.s_meas_rexmits;
  t.meas_sent_new <- st.s_meas_sent_new;
  t.meas_signals_per <- Array.of_list st.s_meas_signals_per;
  (* The cached aggregates are derived state: rebuild them from the
     restored scoreboards. *)
  recompute_min_ack t;
  recompute_pipes t
