(** Sender-side view of one multicast receiver.

    Holds everything the RLA sender keeps per receiver: a SACK
    scoreboard for that receiver's acknowledgment stream, the smoothed
    round-trip time [srtt_i], the congestion-period start used to group
    losses within [2*srtt_i] into one congestion signal, and the EWMA
    of congestion-signal intervals that drives the troubled-receiver
    count (rule 6 of the algorithm). *)

type t

val create :
  addr:Net.Packet.addr ->
  params:Params.t ->
  session_start:float ->
  ?board_start:int ->
  unit ->
  t
(** [board_start] (default 0) aligns the scoreboard with the sender's
    current sequence frontier — used when a receiver joins a running
    session and is only responsible for packets from that point on. *)

val addr : t -> Net.Packet.addr

val board : t -> Tcp.Scoreboard.t

val active : t -> bool
(** [false] once the sender has dropped this receiver (the
    slow-receiver option of section 4.3); its acknowledgments are then
    ignored and it no longer gates the acked-by-all frontier. *)

val deactivate : t -> unit

val srtt : t -> float
(** Smoothed RTT estimate; 0 before the first sample. *)

val observe_rtt : t -> float -> unit

val signals : t -> int
(** Congestion signals raised by this receiver so far. *)

val acks : t -> int

val count_ack : t -> unit

val last_signal : t -> float
(** Time of the most recent congestion signal; [session_start] before
    any. *)

val register_losses : t -> now:float -> bool
(** Called when fresh losses were detected on this receiver's branch.
    Returns [true] when they open a new congestion period (i.e. count
    as one congestion signal); losses within
    [group_rtt_factor * srtt] of the period start return [false]. *)

val mean_signal_interval : t -> now:float -> float
(** EWMA of intervals between this receiver's congestion signals,
    aged by the time since the last signal so a receiver that went
    quiet stops looking congested; [infinity] before the first
    signal. *)

val is_troubled : t -> now:float -> min_interval:float -> eta:float -> bool
(** Rule 6: troubled iff its mean signal interval is within
    [eta * min_interval]. *)

type state = {
  s_board : Tcp.Scoreboard.state;
  s_srtt : Stats.Ewma.state;
  s_interval : Stats.Ewma.state;
  s_cperiod_start : float;
  s_last_signal : float;
  s_signals : int;
  s_acks : int;
  s_active : bool;
}

val capture : t -> state

val restore : t -> state -> unit
