(** RLA receiver endpoint.

    Joins the session's multicast group at its node, consumes data
    (original transmissions arriving down the tree and retransmissions
    arriving by multicast or unicast), and acknowledges every data
    packet by unicast to the sender using the SACK format. *)

type t

val create :
  net:Net.Network.t ->
  node:Net.Packet.addr ->
  flow:Net.Packet.flow ->
  sender:Net.Packet.addr ->
  ?ack_jitter:float ->
  ?start:int ->
  unit ->
  t
(** [ack_jitter] (default 2 ms) delays each acknowledgment by a uniform
    random processing time, desynchronising the ack bursts that a
    multicast delivery triggers across equal-RTT receivers (see
    {!Params.ack_jitter}).

    [start] (default 0) is the first sequence number this endpoint is
    responsible for: a receiver joining a running session acknowledges
    from the sender's current frontier instead of waiting forever for
    packets sent before it existed.  Replaces any handler a previous
    endpoint for the same flow had registered at the node. *)

val node_id : t -> Net.Packet.addr

val expected : t -> int
(** Next in-order packet expected. *)

val received_total : t -> int

val duplicates : t -> int

val rexmits_received : t -> int

type state = {
  s_rng : int64;
  s_ooo : int list;  (** out-of-order set, ascending *)
  s_recent : int list;  (** SACK block representatives, recency order *)
  s_expected : int;
  s_received_total : int;
  s_duplicates : int;
  s_rexmits_received : int;
  s_pending_acks : (Sim.Scheduler.event_id * float * bool) list;
      (** delayed acks in flight: [(event id, echo, ece)], ascending id.
          The cum/SACK snapshot happens at fire time, so only these two
          payload inputs need capturing. *)
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite the endpoint state and re-arm pending delayed-ack events
    under their original ids.  Must run after [Sim.Scheduler.restore]. *)
