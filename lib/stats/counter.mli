(** Event counter with optional warm-up discarding.

    Experiments discard the first 100 s of a run (as the paper does);
    a counter frozen until [enable_after] only counts events past the
    warm-up boundary. *)

type t

val create : ?enable_after:float -> unit -> t
(** [enable_after] defaults to 0 (count everything). *)

val incr : t -> now:float -> unit

val add : t -> now:float -> int -> unit

val value : t -> int

val rate : t -> now:float -> float
(** Events per second since the enable time. *)

val reset : t -> unit

val capture : t -> int
(** The accumulated count ([enable_after] is configuration). *)

val restore : t -> int -> unit
