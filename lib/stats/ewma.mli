(** Exponentially-weighted moving average.

    Used throughout the RLA: smoothed round-trip times, the moving
    average of the congestion window ([awnd]), and per-receiver averages
    of congestion-signal intervals (rule 6 of the algorithm). *)

type t

val create : weight:float -> t
(** [create ~weight] with [0 < weight <= 1]: each update moves the
    average by [weight] towards the new sample.  The first sample
    initialises the average directly. *)

val update : t -> float -> unit

val value : t -> float
(** Current average; 0 before any sample. *)

val value_opt : t -> float option
(** [None] before any sample. *)

val samples : t -> int
(** Number of samples absorbed. *)

val reset : t -> unit

type state = { s_avg : float; s_samples : int }
(** Complete mutable state (the weight is configuration). *)

val capture : t -> state

val restore : t -> state -> unit
