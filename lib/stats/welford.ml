type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

type state = {
  s_n : int;
  s_mean : float;
  s_m2 : float;
  s_min : float;
  s_max : float;
}

let capture t =
  { s_n = t.n; s_mean = t.mean; s_m2 = t.m2; s_min = t.min; s_max = t.max }

let restore t st =
  t.n <- st.s_n;
  t.mean <- st.s_mean;
  t.m2 <- st.s_m2;
  t.min <- st.s_min;
  t.max <- st.s_max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
          /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
  end
