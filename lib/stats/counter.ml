type t = { enable_after : float; mutable count : int }

let create ?(enable_after = 0.0) () = { enable_after; count = 0 }

let add t ~now n = if now >= t.enable_after then t.count <- t.count + n

let incr t ~now = add t ~now 1

let value t = t.count

let rate t ~now =
  let span = now -. t.enable_after in
  if span <= 0.0 then 0.0 else float_of_int t.count /. span

let reset t = t.count <- 0

let capture t = t.count

let restore t n = t.count <- n
