type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (Stdlib.max 64 (2 * cap)) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.size;
    t.sorted <- true
  end

let quantile t q =
  if t.size = 0 then invalid_arg "Quantile.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.quantile: q out of range";
  ensure_sorted t;
  let pos = q *. float_of_int (t.size - 1) in
  let lo = int_of_float pos in
  let hi = Stdlib.min (lo + 1) (t.size - 1) in
  let frac = pos -. float_of_int lo in
  (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)

let median t = quantile t 0.5

let mean t =
  if t.size = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.size - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.size
  end

let to_sorted_array t =
  ensure_sorted t;
  Array.sub t.data 0 t.size
