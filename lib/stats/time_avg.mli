(** Time-weighted average of a piecewise-constant signal.

    The paper reports the *time average* of the congestion window
    (cwnd holds a value until the next update), so a plain sample mean
    would be biased; this accumulator weights each value by how long it
    was held. *)

type t

val create : start:float -> value:float -> t
(** Signal starts at [start] with [value]. *)

val update : t -> time:float -> value:float -> unit
(** Record that at [time] the signal changed to [value].  [time] must
    be >= the previous update time. *)

val average : t -> upto:float -> float
(** Time-weighted mean over [\[start, upto\]]. *)

val current : t -> float

val reset : t -> start:float -> value:float -> unit
(** Restart accumulation (used to discard a warm-up interval). *)

type state = {
  s_start : float;
  s_last_time : float;
  s_last_value : float;
  s_weighted_sum : float;
}

val capture : t -> state

val restore : t -> state -> unit
