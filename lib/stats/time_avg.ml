type t = {
  mutable start : float;
  mutable last_time : float;
  mutable last_value : float;
  mutable weighted_sum : float;
}

let create ~start ~value =
  { start; last_time = start; last_value = value; weighted_sum = 0.0 }

let update t ~time ~value =
  if time < t.last_time then
    invalid_arg "Time_avg.update: time moves backwards";
  t.weighted_sum <- t.weighted_sum +. (t.last_value *. (time -. t.last_time));
  t.last_time <- time;
  t.last_value <- value

let average t ~upto =
  let upto = Stdlib.max upto t.last_time in
  let total = t.weighted_sum +. (t.last_value *. (upto -. t.last_time)) in
  let span = upto -. t.start in
  if span <= 0.0 then t.last_value else total /. span

let current t = t.last_value

let reset t ~start ~value =
  t.start <- start;
  t.last_time <- start;
  t.last_value <- value;
  t.weighted_sum <- 0.0

type state = {
  s_start : float;
  s_last_time : float;
  s_last_value : float;
  s_weighted_sum : float;
}

let capture t =
  {
    s_start = t.start;
    s_last_time = t.last_time;
    s_last_value = t.last_value;
    s_weighted_sum = t.weighted_sum;
  }

let restore t st =
  t.start <- st.s_start;
  t.last_time <- st.s_last_time;
  t.last_value <- st.s_last_value;
  t.weighted_sum <- st.s_weighted_sum
