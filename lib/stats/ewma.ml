type t = { weight : float; mutable avg : float; mutable samples : int }

let create ~weight =
  if weight <= 0.0 || weight > 1.0 then
    invalid_arg "Ewma.create: weight must be in (0, 1]";
  { weight; avg = 0.0; samples = 0 }

let update t x =
  if t.samples = 0 then t.avg <- x
  else t.avg <- t.avg +. (t.weight *. (x -. t.avg));
  t.samples <- t.samples + 1

let value t = t.avg

let value_opt t = if t.samples = 0 then None else Some t.avg

let samples t = t.samples

let reset t =
  t.avg <- 0.0;
  t.samples <- 0

type state = { s_avg : float; s_samples : int }

let capture t = { s_avg = t.avg; s_samples = t.samples }

let restore t st =
  t.avg <- st.s_avg;
  t.samples <- st.s_samples
