(** Streaming mean and variance (Welford's algorithm).

    Numerically stable accumulation of count / mean / variance without
    storing samples; used for per-run summary statistics. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (unbiased); 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel formula). *)

type state = {
  s_n : int;
  s_mean : float;
  s_m2 : float;
  s_min : float;
  s_max : float;
}

val capture : t -> state

val restore : t -> state -> unit
