(* lint: allow-file ckpt-coverage -- packet fields are mutable only so
   the pool can recycle records; per-packet state is captured and
   restored by the owning link/node codecs, never by this module. *)

type addr = int

type group = int

type flow = int

type dest = Unicast of addr | Multicast of group

type payload = ..

type payload += Raw

(* Fields are mutable solely so [Pool] can overwrite a recycled record
   in place; outside the pool a packet is logically immutable, except
   that a link may set [ecn] while it holds the only reference (the
   copy-on-write mark path).  [refs] counts owners: a multicast fan-out
   shares one record across the outgoing links, and the record returns
   to the free list only when the last owner releases it. *)
type t = {
  mutable uid : int;
  mutable flow : flow;
  mutable src : addr;
  mutable dst : dest;
  mutable size : int;
  mutable payload : payload;
  mutable born : float;
  mutable ecn : bool;
  mutable refs : int;
}

let dest_to_string = function
  | Unicast a -> Printf.sprintf "node:%d" a
  | Multicast g -> Printf.sprintf "group:%d" g

let pp ppf t =
  Format.fprintf ppf "pkt#%d flow:%d %d->%s %dB" t.uid t.flow t.src
    (dest_to_string t.dst) t.size

module Pool = struct
  type pkt = t

  type nonrec t = {
    mutable free : pkt array;
    mutable n_free : int;
    mutable allocated : int;  (* fresh records ever built *)
    mutable recycled : int;  (* acquisitions served from the free list *)
  }

  (* lint: allow shared-mutable-capture -- array-fill sentinel only;
     never dereferenced, every free-list slot is overwritten before use *)
  let dummy_pkt =
    {
      uid = -1;
      flow = -1;
      src = -1;
      dst = Unicast (-1);
      size = 0;
      payload = Raw;
      born = 0.0;
      ecn = false;
      refs = 0;
    }

  let create () = { free = [||]; n_free = 0; allocated = 0; recycled = 0 }

  let free_count t = t.n_free

  let allocated t = t.allocated

  let recycled t = t.recycled

  let acquire t ~uid ~flow ~src ~dst ~size ~payload ~born =
    if t.n_free > 0 then begin
      let i = t.n_free - 1 in
      t.n_free <- i;
      let p = t.free.(i) in
      t.free.(i) <- dummy_pkt;
      t.recycled <- t.recycled + 1;
      p.uid <- uid;
      p.flow <- flow;
      p.src <- src;
      p.dst <- dst;
      p.size <- size;
      p.payload <- payload;
      p.born <- born;
      p.ecn <- false;
      p.refs <- 1;
      p
    end
    else begin
      t.allocated <- t.allocated + 1;
      { uid; flow; src; dst; size; payload; born; ecn = false; refs = 1 }
    end

  (* Copy-on-write for the ECN mark path: a shared (multicast fan-out)
     packet cannot be marked in place, so the marking link takes a
     private copy under the same uid — traces and delay accounting are
     unchanged — and drops its claim on the original. *)
  let acquire_copy t p =
    let c =
      acquire t ~uid:p.uid ~flow:p.flow ~src:p.src ~dst:p.dst ~size:p.size
        ~payload:p.payload ~born:p.born
    in
    c.ecn <- p.ecn;
    c

  (* lint: hot Pool.retain -- per multicast fan-out branch; a bare
     refcount bump *)
  let retain p =
    if p.refs <= 0 then
      invalid_arg
        (Printf.sprintf "Packet.Pool.retain: pkt#%d is already released" p.uid);
    p.refs <- p.refs + 1

  (* lint: hot Pool.release -- every packet exit path (drop, deliver,
     sink) lands here; recycling exists precisely to avoid allocation *)
  let release t p =
    if p.refs <= 0 then
      invalid_arg
        (Printf.sprintf "Packet.Pool.release: pkt#%d is already released" p.uid);
    p.refs <- p.refs - 1;
    if p.refs = 0 then begin
      (* Drop the payload reference so recycling never keeps a protocol
         header (and whatever it points at) alive. *)
      p.payload <- Raw;
      let cap = Array.length t.free in
      if t.n_free = cap then begin
        let grown = Array.make (Stdlib.max 16 (2 * cap)) dummy_pkt in
        Array.blit t.free 0 grown 0 t.n_free;
        t.free <- grown
      end;
      t.free.(t.n_free) <- p;
      t.n_free <- t.n_free + 1
    end
end
