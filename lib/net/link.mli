(** Unidirectional link: buffer + transmitter + propagation delay.

    A packet offered to the link first passes the queue discipline.
    Admitted packets wait in a FIFO buffer; the transmitter serializes
    one packet at a time at the configured bandwidth and hands it to
    the [deliver] callback after the propagation delay.

    When [phase_jitter] is on, a uniform random processing delay of up
    to one packet service time is added before delivery, implementing
    the paper's phase-effect elimination for drop-tail gateways
    (section 3.1).  Delivery stays FIFO regardless of jitter: a
    packet's delivery time is clamped to be no earlier than the
    previously scheduled delivery on the same link, so mixed packet
    sizes (e.g. 40 B ACKs behind 1000 B data) cannot be reordered.

    Links can be reconfigured at runtime for fault injection:
    {!set_down}/{!set_up} toggle the carrier (a down link counts every
    offer — and whatever it was holding — as dropped), and
    {!set_bandwidth}/{!set_delay} change the service rate and
    propagation delay mid-run without reordering deliveries (the FIFO
    clamp above still applies). *)

type t

type config = {
  bandwidth_bps : float;  (** Bits per second. *)
  prop_delay : float;  (** Seconds, one-way. *)
  queue : Queue_disc.kind;
  capacity : int;  (** Buffer size in packets. *)
  phase_jitter : bool;
}

type stats = {
  offered : int;  (** Packets offered to the link. *)
  dropped : int;  (** Packets rejected by the discipline/buffer. *)
  delivered : int;  (** Packets handed to the far end. *)
  bytes_delivered : int;
  marked : int;  (** Packets ECN-marked by the discipline. *)
}

val create :
  sched:Sim.Scheduler.t ->
  rng:Sim.Rng.t ->
  pool:Packet.Pool.t ->
  id:string ->
  config ->
  deliver:(Packet.t -> unit) ->
  t
(** [pool] receives every packet the link drops; admitted packets carry
    their reference through to the [deliver] callback, which assumes
    ownership. *)

val send : t -> Packet.t -> unit
(** Offer a packet; drops are counted, not signalled to the caller
    (endpoints learn about losses end-to-end, as in the real network).
    The caller's reference transfers to the link: a dropped packet is
    released back to the pool after the drop hook runs, a delivered one
    is handed on to the [deliver] callback. *)

val id : t -> string

val config : t -> config
(** Current configuration (reflects runtime reconfiguration). *)

val qlen : t -> int
(** Packets currently waiting (excludes the one in service). *)

val busy : t -> bool

val stats : t -> stats

val reset_stats : t -> unit

val service_time : t -> int -> float
(** [service_time t size] is the transmission time of [size] bytes. *)

val set_drop_hook : t -> (Packet.t -> unit) -> unit
(** Called on every packet the link drops (for experiment probes). *)

val set_registry : t -> Obs.Registry.t option -> unit
(** Install (or remove) a metrics registry on this link and its queue
    discipline.  Exposes a ["link.<id>.qlen"] occupancy series (sampled
    on every arrival), ["link.<id>.drops"] / ["link.<id>.marks"] /
    ["link.<id>.delivered"] counters, [drop]/[mark] events on the
    registry's taps, and RED's ["red.<id>.avg_queue"] estimate.
    Passive: behaviour and RNG use are unchanged. *)

val avg_queue : t -> float
(** RED average queue estimate ([nan] for drop-tail links). *)

(** {2 Runtime reconfiguration (fault injection)} *)

val is_up : t -> bool
(** Carrier state; links are created up. *)

val set_down : t -> unit
(** Take the link down.  The packet currently being serialized is
    aborted and every queued packet is flushed; all of them are counted
    in [stats.dropped] (and fed to the drop hook).  Packets already
    past serialization are on the wire and still arrive.  While down,
    every {!send} is rejected and counted as dropped — the queue
    discipline is bypassed entirely (no RED bookkeeping, no RNG
    draws).  Idempotent. *)

val set_up : t -> unit
(** Restore the carrier.  Transmission resumes with the next offered
    packet.  Idempotent. *)

val downtime : t -> float
(** Cumulative seconds this link has spent down (including the current
    outage, if one is in progress). *)

val set_bandwidth : t -> float -> unit
(** Change the service rate mid-run.  The packet currently in service
    completes at the rate it started with; later packets serialize at
    the new rate.  Deliveries stay FIFO (the per-link delivery clamp
    still applies).  Raises [Invalid_argument] unless positive. *)

val set_delay : t -> float -> unit
(** Change the one-way propagation delay.  Applies to every packet
    whose serialization completes after the change; packets already
    propagating keep their old delay.  Shrinking the delay cannot
    reorder deliveries: each delivery is clamped to be no earlier than
    the previously scheduled one.  Raises [Invalid_argument] when
    negative. *)

(** {2 Checkpoint/restore} *)

type state = {
  s_bandwidth_bps : float;
  s_prop_delay : float;
  s_buffer : Packet.t list;  (** FIFO order, head of line first *)
  s_busy : bool;
  s_in_service : Packet.t option;
  s_tx_event : Sim.Scheduler.event_id option;
  s_inflight : (Sim.Scheduler.event_id * Packet.t) list;
      (** packets past serialization, keyed by delivery event id *)
  s_up : bool;
  s_down_since : float;
  s_downtime_acc : float;
  s_last_delivery : float;
  s_offered : int;
  s_dropped : int;
  s_delivered : int;
  s_bytes_delivered : int;
  s_marked : int;
  s_rng : int64;
  s_disc : Queue_disc.state;
}

val capture : t -> state
(** Pure read of the complete link state, including the shared
    link/discipline RNG and every delivery still on the wire. *)

val restore : t -> state -> unit
(** Overwrite the link with a captured state and re-arm its pending
    events (tx completion, in-flight deliveries) under their original
    ids.  Must run after [Sim.Scheduler.restore] on the same
    scheduler. *)
