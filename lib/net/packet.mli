(** Simulated packets.

    A packet carries an extensible [payload] so each transport protocol
    (TCP, RLA, the rate-based baselines) defines its own header type
    without this module depending on any of them.

    Packet records are recycled through {!Pool} so per-hop forwarding
    stops allocating: fields are mutable only for the pool's benefit,
    and outside the pool a packet is read-only (a link may flip [ecn]
    while it holds the sole reference).  Ownership is counted in
    [refs]: whoever holds a packet owns one reference, handing it on
    (e.g. [Link.send], the deliver callback) transfers that reference,
    and the terminal owner releases it back to the pool. *)

type addr = int
(** Node identifier. *)

type group = int
(** Multicast group identifier. *)

type flow = int
(** Flow (connection/session) identifier; used to dispatch a delivered
    packet to the right endpoint agent. *)

type dest = Unicast of addr | Multicast of group

type payload = ..
(** Extensible: each protocol adds its own constructors. *)

type payload += Raw
(** Payload-free filler traffic. *)

type t = {
  mutable uid : int;  (** Unique per network; never reused. *)
  mutable flow : flow;
  mutable src : addr;
  mutable dst : dest;
  mutable size : int;  (** Bytes, headers included. *)
  mutable payload : payload;
  mutable born : float;
      (** Creation time, for end-to-end delay accounting. *)
  mutable ecn : bool;
      (** Congestion-experienced mark: set by an ECN-enabled RED
          gateway instead of dropping; echoed back by receivers so
          senders can react without packet loss. *)
  mutable refs : int;
      (** Owner count; managed through {!Pool.retain}/{!Pool.release}.
          Mutability of every field above is for {!Pool} recycling
          only — treat packets as read-only. *)
}

val dest_to_string : dest -> string

val pp : Format.formatter -> t -> unit

(** Free-list recycling of packet records.

    Rules: a handler or hook invoked with a packet may read it for the
    duration of the call but must not stash the record itself (copy the
    fields out instead) — after the call returns the owner releases the
    packet and the record may be recycled for a different packet.
    [release] on the last reference resets [payload] to {!Raw} so
    recycled records keep no protocol header alive. *)
module Pool : sig
  type pkt = t

  type t

  val dummy_pkt : pkt
  (** Inert never-sent filler (uid -1, zero references) for slots that
      need a packet value, e.g. ring-buffer dummies. *)

  val create : unit -> t

  val acquire :
    t ->
    uid:int ->
    flow:flow ->
    src:addr ->
    dst:dest ->
    size:int ->
    payload:payload ->
    born:float ->
    pkt
  (** A packet with one reference, recycled from the free list when
      possible; [ecn] starts false. *)

  val acquire_copy : t -> pkt -> pkt
  (** Private copy of a packet (same uid, all fields) with one
      reference — the copy-on-write step for marking a shared packet. *)

  val retain : pkt -> unit
  (** Add a reference (multicast fan-out holds one per outgoing link). *)

  val release : t -> pkt -> unit
  (** Drop a reference; the last release returns the record to the free
      list.  Raises [Invalid_argument] on a packet with no outstanding
      references (double release). *)

  val free_count : t -> int
  (** Records currently waiting for reuse. *)

  val allocated : t -> int
  (** Fresh records ever built (pool misses). *)

  val recycled : t -> int
  (** Acquisitions served from the free list (pool hits). *)
end
