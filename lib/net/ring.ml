(* Growable circular FIFO backed by a single array.

   Unlike [Stdlib.Queue] there is no per-element cell allocation: push
   and pop touch one array slot each, so the link hot path (enqueue,
   dequeue, wire tracking) stops allocating per packet.  Capacity is a
   power of two so the index wrap is a mask, and popped slots are
   overwritten with the caller-supplied dummy so a drained ring keeps
   no element reachable. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
  dummy : 'a;
}

let initial_capacity = 16

let create ~dummy = { buf = [||]; head = 0; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let new_cap = if cap = 0 then initial_capacity else 2 * cap in
    let buf = Array.make new_cap t.dummy in
    for i = 0 to t.len - 1 do
      buf.(i) <- t.buf.((t.head + i) land (cap - 1))
    done;
    t.buf <- buf;
    t.head <- 0
  end

let push t x =
  grow t;
  let mask = Array.length t.buf - 1 in
  t.buf.((t.head + t.len) land mask) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- t.dummy;
    t.head <- (t.head + 1) land (Array.length t.buf - 1);
    t.len <- t.len - 1;
    Some x
  end

let peek t = if t.len = 0 then None else Some t.buf.(t.head)

let clear t =
  let mask = Array.length t.buf - 1 in
  for i = 0 to t.len - 1 do
    t.buf.((t.head + i) land mask) <- t.dummy
  done;
  t.head <- 0;
  t.len <- 0

let iter t ~f =
  let mask = Array.length t.buf - 1 in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) land mask)
  done

let capture t =
  let xs = ref [] in
  iter t ~f:(fun x -> xs := x :: !xs);
  List.rev !xs

let restore t xs =
  clear t;
  List.iter (fun x -> push t x) xs
