(** Network node: endpoint dispatch + unicast/multicast forwarding.

    A node delivers packets addressed to it (or to a multicast group it
    joined) to the handler registered for the packet's flow, and
    forwards everything else along its routing tables.  Routing tables
    are filled in by {!Network} after the topology is built. *)

type t

val create : pool:Packet.Pool.t -> Packet.addr -> t
(** [pool] settles the references of packets this node terminates
    (local delivery, undeliverable). *)

val id : t -> Packet.addr

val set_route : t -> dest:Packet.addr -> Link.t -> unit
(** Next-hop link for unicast traffic towards [dest]. *)

val route : t -> dest:Packet.addr -> Link.t option

val add_mcast_route : t -> group:Packet.group -> Link.t -> unit
(** Add an outgoing branch of the distribution tree for [group];
    duplicates are ignored. *)

val mcast_routes : t -> group:Packet.group -> Link.t list

val join : t -> group:Packet.group -> unit
(** Become a local receiver of [group]'s traffic. *)

val joined : t -> group:Packet.group -> bool

val attach : t -> flow:Packet.flow -> (Packet.t -> unit) -> unit
(** Register the endpoint handler for [flow]; replaces any previous
    handler for the same flow. *)

val detach : t -> flow:Packet.flow -> unit

val receive : t -> Packet.t -> unit
(** Entry point for packets arriving at (or originating from) this
    node: local delivery and/or forwarding.  Consumes the caller's
    packet reference: terminal packets are released back to the pool
    after the flow handler returns (handlers must not stash the
    record), forwarded ones transfer their reference to the links —
    a multicast fan-out retains one extra reference per additional
    branch first. *)

val undeliverable : t -> int
(** Packets that reached this node but had no handler and no route. *)

val capture : t -> int
(** The undeliverable count — the node's only simulation state (routing
    tables and handlers are wiring, rebuilt by the experiment setup). *)

val restore : t -> int -> unit
