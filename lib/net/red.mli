(** Random Early Detection gateway discipline (Floyd & Jacobson 1993).

    The average queue size is an EWMA of the instantaneous queue,
    corrected for idle periods; between the two thresholds each arrival
    is dropped with a probability that grows both with the average
    queue and with the number of packets admitted since the last drop,
    which is what spreads drops proportionally across flows — the
    property the paper's Theorem I relies on. *)

type params = {
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  w_q : float;  (** EWMA weight, NS2 default 0.002 *)
  max_p : float;  (** drop probability at [max_th], NS2 default 0.1 *)
  mean_pkt_time : float;
      (** Transmission time of a typical packet; used to age the average
          across idle periods. *)
  ecn : bool;
      (** Mark instead of dropping in the probabilistic band (RFC-3168
          style); arrivals above [max_th] and buffer overflows still
          drop. *)
}

val default_params : mean_pkt_time:float -> params
(** The paper's setup: min 5, max 15, NS2 defaults elsewhere. *)

type t

val create : params -> rng:Sim.Rng.t -> t

val set_registry : t -> Obs.Registry.t option -> id:string -> unit
(** Install (or remove) instrumentation: a ["red.<id>.avg_queue"]
    series sampled on every arrival decision, plus
    ["red.<id>.early_drops"] and ["red.<id>.marks"] counters.  Probing
    is passive — decisions and RNG draws are unaffected. *)

val avg_queue : t -> float
(** Current average queue estimate (packets). *)

val decide : t -> now:float -> qlen:int -> [ `Admit | `Drop | `Mark ]
(** Per-arrival decision given the instantaneous queue length; [`Mark]
    only occurs with {!params.ecn} set. *)

val note_empty : t -> now:float -> unit
(** Record that the queue just went idle (needed for idle aging). *)

val drops : t -> int
(** Early (probabilistic + over-threshold) drops so far. *)

val marks : t -> int
(** ECN marks so far. *)

type state = {
  s_avg : float;
  s_count : int;
  s_q_time : float;
  s_idle : bool;
  s_drops : int;
  s_marks : int;
}
(** Complete mutable gateway state.  The RNG is shared with the owning
    link, which captures it separately. *)

val capture : t -> state

val restore : t -> state -> unit
