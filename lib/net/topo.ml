type edge = { u : int; v : int; config : Link.config }
type t = { n : int; edges : edge list }

let check_edges ~n edges =
  let seen = Hashtbl.create (List.length edges * 2) in
  List.iter
    (fun e ->
      if e.u = e.v then
        invalid_arg (Printf.sprintf "Topo: self-loop at node %d" e.u);
      if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
        invalid_arg
          (Printf.sprintf "Topo: edge (%d,%d) out of range [0,%d)" e.u e.v n);
      let key = (Stdlib.min e.u e.v, Stdlib.max e.u e.v) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Topo: duplicate edge (%d,%d)" e.u e.v);
      Hashtbl.replace seen key ())
    edges

let of_edges ~n spec =
  if n < 1 then invalid_arg "Topo.of_edges: n must be >= 1";
  let edges = List.map (fun (u, v, config) -> { u; v; config }) spec in
  check_edges ~n edges;
  { n; edges }

let level_config configs d =
  configs.(Stdlib.min (d - 1) (Array.length configs - 1))

let kary ~fanout ~depth ~configs =
  if fanout < 2 then invalid_arg "Topo.kary: fanout must be >= 2";
  if depth < 0 then invalid_arg "Topo.kary: depth must be >= 0";
  if Array.length configs = 0 then invalid_arg "Topo.kary: configs is empty";
  (* Nodes per level: fanout^d; node i's parent is (i-1)/fanout. *)
  let n = ref 1 and level = ref 1 in
  for _ = 1 to depth do
    level := !level * fanout;
    n := !n + !level
  done;
  let n = !n in
  (* Depth of node i: the level whose index range contains i. *)
  let edges = ref [] in
  let first = ref 1 and width = ref fanout in
  for d = 1 to depth do
    for i = !first to !first + !width - 1 do
      edges := { u = (i - 1) / fanout; v = i; config = level_config configs d }
               :: !edges
    done;
    first := !first + !width;
    width := !width * fanout
  done;
  { n; edges = List.rev !edges }

let fat_tree ~k ~configs =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topo.fat_tree: k must be even and >= 2";
  if Array.length configs = 0 then invalid_arg "Topo.fat_tree: configs is empty";
  let half = k / 2 in
  let cores = half * half in
  let layer l = configs.(Stdlib.min l (Array.length configs - 1)) in
  (* Ids: cores [0,cores); pod p's aggs at cores + p*k + i, edges at
     cores + p*k + half + i; hosts after all switches. *)
  let agg p i = cores + (p * k) + i in
  let edge_sw p i = cores + (p * k) + half + i in
  let host_base = cores + (k * k) in
  let host p e j = host_base + (p * half * half) + (e * half) + j in
  let n = host_base + (k * half * half) in
  let edges = ref [] in
  for p = 0 to k - 1 do
    for i = 0 to half - 1 do
      (* Agg i of every pod connects to cores [i*half .. i*half+half-1]. *)
      for c = 0 to half - 1 do
        edges := { u = (i * half) + c; v = agg p i; config = layer 0 } :: !edges
      done
    done;
    for e = 0 to half - 1 do
      for i = 0 to half - 1 do
        edges := { u = agg p i; v = edge_sw p e; config = layer 1 } :: !edges
      done;
      for j = 0 to half - 1 do
        edges := { u = edge_sw p e; v = host p e j; config = layer 2 } :: !edges
      done
    done
  done;
  { n; edges = List.rev !edges }

let random_graph ~seed ~n ~extra ~configs =
  if n < 1 then invalid_arg "Topo.random_graph: n must be >= 1";
  if extra < 0 then invalid_arg "Topo.random_graph: extra must be >= 0";
  if Array.length configs = 0 then
    invalid_arg "Topo.random_graph: configs is empty";
  let rng = Sim.Rng.create seed in
  let pick_config () = configs.(Sim.Rng.int rng (Array.length configs)) in
  let present = Hashtbl.create (2 * (n + extra)) in
  let key u v = (Stdlib.min u v, Stdlib.max u v) in
  let edges = ref [] in
  for v = 1 to n - 1 do
    let u = Sim.Rng.int rng v in
    Hashtbl.replace present (key u v) ();
    edges := { u; v; config = pick_config () } :: !edges
  done;
  (* Extra edges by bounded rejection sampling: deterministic for a
     seed, and capped so dense graphs cannot loop forever. *)
  if n > 1 then begin
    let added = ref 0 and attempts = ref 0 in
    let max_attempts = 10 * (extra + 1) in
    while !added < extra && !attempts < max_attempts do
      incr attempts;
      let u = Sim.Rng.int rng n and v = Sim.Rng.int rng n in
      if u <> v && not (Hashtbl.mem present (key u v)) then begin
        Hashtbl.replace present (key u v) ();
        edges := { u; v; config = pick_config () } :: !edges;
        incr added
      end
    done
  end;
  { n; edges = List.rev !edges }

let node_count t = t.n
let edge_count t = List.length t.edges

let neighbors t =
  let adj = Array.make t.n [] in
  List.iter
    (fun e ->
      adj.(e.u) <- e.v :: adj.(e.u);
      adj.(e.v) <- e.u :: adj.(e.v))
    t.edges;
  Array.map List.rev adj

let degrees t =
  let deg = Array.make t.n 0 in
  List.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    t.edges;
  deg

let leaves t =
  let deg = degrees t in
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if deg.(v) = 1 then acc := v :: !acc
  done;
  !acc

let bfs_parents t ~root =
  if root < 0 || root >= t.n then invalid_arg "Topo.bfs_parents: bad root";
  let adj = neighbors t in
  let parents = Array.make t.n (-1) in
  parents.(root) <- root;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if parents.(v) < 0 then begin
          parents.(v) <- u;
          Queue.add v q
        end)
      adj.(u)
  done;
  parents

let connected t =
  let parents = bfs_parents t ~root:0 in
  Array.for_all (fun p -> p >= 0) parents

let path_to_root ~parents v =
  if v < 0 || v >= Array.length parents || parents.(v) < 0 then
    invalid_arg "Topo.path_to_root: unreachable node";
  let rec up v acc = if parents.(v) = v then v :: acc else up parents.(v) (v :: acc) in
  List.rev (up v [])

let tree_path ~parents a b =
  let pa = path_to_root ~parents a (* a .. root *) in
  let pb = path_to_root ~parents b in
  (* Strip the common suffix (toward the root), keeping the LCA once. *)
  let ra = List.rev pa (* root .. a *) and rb = List.rev pb in
  let rec strip ra rb lca =
    match (ra, rb) with
    | x :: ra', y :: rb' when x = y -> strip ra' rb' x
    | _ -> (ra, rb, lca)
  in
  match (ra, rb) with
  | x :: _, y :: _ when x <> y ->
      invalid_arg "Topo.tree_path: nodes in different components"
  | _ ->
      let ta, tb, lca = strip ra rb (-1) in
      (* ta runs lca-side .. a; reversed it runs a .. lca-exclusive. *)
      List.rev ta @ (lca :: tb)
