(** Growable circular FIFO backed by a single array.

    Replaces [Stdlib.Queue] on the link hot path: push and pop touch
    one array slot each instead of allocating a cell per element.  The
    [dummy] supplied at creation fills vacated slots, so a drained ring
    keeps no element (packet, closure) reachable. *)

type 'a t

val create : dummy:'a -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back, growing the backing array if full. *)

val pop : 'a t -> 'a option
(** Remove and return the front element; its slot is overwritten with
    the dummy. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
(** Remove all elements, overwriting every occupied slot. *)

val iter : 'a t -> f:('a -> unit) -> unit
(** Front to back. *)

val capture : 'a t -> 'a list
(** Contents front-to-back; pure read (checkpoint support). *)

val restore : 'a t -> 'a list -> unit
(** Replace the contents with a captured list, front first. *)
