type kind = Droptail | Red_gateway of Red.params | Bernoulli_loss of float

type impl = Tail | Red_state of Red.t | Lossy of float * Sim.Rng.t

type t = { kind : kind; capacity : int; impl : impl }

let create kind ~capacity ~rng =
  if capacity <= 0 then invalid_arg "Queue_disc.create: capacity must be positive";
  let impl =
    match kind with
    | Droptail -> Tail
    | Red_gateway params -> Red_state (Red.create params ~rng)
    | Bernoulli_loss p ->
        if p < 0.0 || p >= 1.0 then
          invalid_arg "Queue_disc.create: loss probability out of range";
        Lossy (p, rng)
  in
  { kind; capacity; impl }

let kind t = t.kind

let set_registry t reg ~id =
  match t.impl with
  | Tail | Lossy _ -> ()
  | Red_state red -> Red.set_registry red reg ~id

let capacity t = t.capacity

let on_arrival t ~now ~qlen =
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (qlen >= 0 && qlen <= t.capacity)
      (fun () ->
        Printf.sprintf
          "Queue_disc.on_arrival: occupancy %d outside [0, %d]" qlen t.capacity);
  if qlen >= t.capacity then `Drop
  else
    match t.impl with
    | Tail -> `Admit
    | Red_state red -> Red.decide red ~now ~qlen
    | Lossy (p, rng) -> if Sim.Rng.bernoulli rng p then `Drop else `Admit

let on_empty t ~now =
  match t.impl with
  | Tail | Lossy _ -> ()
  | Red_state red -> Red.note_empty red ~now

let avg_queue t =
  match t.impl with
  | Tail | Lossy _ -> nan
  | Red_state red -> Red.avg_queue red

(* Drop-tail and Bernoulli disciplines hold no mutable state of their
   own (the loss RNG is shared with the owning link). *)
type state = Stateless | Red of Red.state

let capture t =
  match t.impl with
  | Tail | Lossy _ -> Stateless
  | Red_state red -> Red (Red.capture red)

let restore t st =
  match (t.impl, st) with
  | (Tail | Lossy _), Stateless -> ()
  | Red_state red, Red s -> Red.restore red s
  | Red_state _, Stateless | (Tail | Lossy _), Red _ ->
      invalid_arg "Queue_disc.restore: discipline mismatch"
