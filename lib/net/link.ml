type config = {
  bandwidth_bps : float;
  prop_delay : float;
  queue : Queue_disc.kind;
  capacity : int;
  phase_jitter : bool;
}

type stats = {
  offered : int;
  dropped : int;
  delivered : int;
  bytes_delivered : int;
  marked : int;
}

(* The link owns one packet reference for everything it holds (buffer,
   in service, on the wire) and settles it on every exit path: drops
   release back to the pool, deliveries transfer the reference to the
   [deliver] callback.

   Event closures are shared, not per-packet: the link is strictly FIFO
   (the delivery clamp in [propagate] plus in-order event ids), so the
   next tx completion always concerns [in_service] and the next
   delivery always concerns the front of the [wire] ring.  One
   [tx_thunk] and one [deliver_thunk] per link replace a closure (and a
   ref cell) per packet. *)
type t = {
  id : string;
  sched : Sim.Scheduler.t;
  rng : Sim.Rng.t;
  pool : Packet.Pool.t;
  mutable config : config;
  disc : Queue_disc.t;
  buffer : Packet.t Ring.t;
  deliver : Packet.t -> unit;
  (* Packets past serialization in delivery order, with their delivery
     event ids (ascending), so a checkpoint can re-arm every delivery
     still on the wire. *)
  wire_ids : int Ring.t;
  wire_pkts : Packet.t Ring.t;
  mutable tx_thunk : unit -> unit;
  mutable deliver_thunk : unit -> unit;
  mutable busy : bool;
  mutable in_service : Packet.t option;
  mutable tx_event : Sim.Scheduler.event_id option;
  mutable up : bool;
  mutable down_since : float;
  mutable downtime_acc : float;
  mutable last_delivery : float;
  mutable offered : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable marked : int;
  mutable drop_hook : (Packet.t -> unit) option;
  mutable taps : taps option;
}

and taps = {
  reg : Obs.Registry.t;
  src : string;  (* cached "link.<id>" so emits never build strings *)
  qlen_s : Obs.Series.t;  (* occupancy sampled on every arrival *)
  drops_c : Obs.Registry.counter;
  marks_c : Obs.Registry.counter;
  delivered_c : Obs.Registry.counter;
}

let id t = t.id

let config t = t.config

let qlen t = Ring.length t.buffer

let busy t = t.busy

let is_up t = t.up

let service_time t size = float_of_int (size * 8) /. t.config.bandwidth_bps

let stats t =
  {
    offered = t.offered;
    dropped = t.dropped;
    delivered = t.delivered;
    bytes_delivered = t.bytes_delivered;
    marked = t.marked;
  }

let reset_stats t =
  t.offered <- 0;
  t.dropped <- 0;
  t.delivered <- 0;
  t.bytes_delivered <- 0;
  t.marked <- 0

let set_drop_hook t hook = t.drop_hook <- Some hook

let avg_queue t = Queue_disc.avg_queue t.disc

let downtime t =
  t.downtime_acc
  +. if t.up then 0.0 else Sim.Scheduler.now t.sched -. t.down_since

let count_drop t pkt =
  t.dropped <- t.dropped + 1;
  (match t.taps with
  | None -> ()
  | Some taps ->
      Obs.Registry.incr taps.drops_c;
      Obs.Registry.emit taps.reg
        ~time:(Sim.Scheduler.now t.sched)
        ~source:taps.src
        ~event:"drop"
        ~value:(float_of_int (Ring.length t.buffer)));
  (match t.drop_hook with None -> () | Some hook -> hook pkt);
  Packet.Pool.release t.pool pkt

(* Deliver after propagation (+ optional phase jitter of up to one
   service time, section 3.1 of the paper).  The jitter is drawn
   independently per packet, so a small packet chasing a large one
   could otherwise overtake it; clamping each delivery to the link's
   last scheduled delivery keeps the link FIFO (ties fire in
   scheduling order, preserving arrival order).  The clamp also covers
   runtime reconfiguration: shrinking [prop_delay] or growing
   [bandwidth_bps] mid-run cannot schedule a delivery before one
   already on the wire. *)
let deliver_front t =
  match (Ring.pop t.wire_ids, Ring.pop t.wire_pkts) with
  | Some _, Some pkt -> t.deliver pkt
  | _ ->
      invalid_arg
        (Printf.sprintf "Link %s: delivery fired with an empty wire" t.id)

let propagate t pkt =
  let jitter =
    if t.config.phase_jitter then
      Sim.Rng.float t.rng (service_time t pkt.Packet.size)
    else 0.0
  in
  let at =
    Stdlib.max
      (Sim.Scheduler.now t.sched +. t.config.prop_delay +. jitter)
      t.last_delivery
  in
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (at >= t.last_delivery && at >= Sim.Scheduler.now t.sched)
      (fun () ->
        Printf.sprintf
          "Link %s: delivery at %g would overtake last delivery %g (now %g)"
          t.id at t.last_delivery
          (Sim.Scheduler.now t.sched));
  t.last_delivery <- at;
  let eid = Sim.Scheduler.schedule_at t.sched at t.deliver_thunk in
  Ring.push t.wire_ids eid;
  Ring.push t.wire_pkts pkt

let rec complete_tx t =
  match t.in_service with
  | None ->
      invalid_arg
        (Printf.sprintf "Link %s: tx completion with nothing in service" t.id)
  | Some pkt ->
      t.tx_event <- None;
      t.in_service <- None;
      t.delivered <- t.delivered + 1;
      t.bytes_delivered <- t.bytes_delivered + pkt.Packet.size;
      (match t.taps with
      | None -> ()
      | Some taps -> Obs.Registry.incr taps.delivered_c);
      propagate t pkt;
      start_transmission t

and start_transmission t =
  match Ring.pop t.buffer with
  | None ->
      t.busy <- false;
      Queue_disc.on_empty t.disc ~now:(Sim.Scheduler.now t.sched)
  | Some pkt ->
      t.busy <- true;
      t.in_service <- Some pkt;
      let tx = service_time t pkt.Packet.size in
      t.tx_event <- Some (Sim.Scheduler.schedule_after t.sched tx t.tx_thunk)

let create ~sched ~rng ~pool ~id config ~deliver =
  if config.bandwidth_bps <= 0.0 then
    invalid_arg "Link.create: bandwidth must be positive";
  if config.prop_delay < 0.0 then
    invalid_arg "Link.create: negative propagation delay";
  let t =
    {
      id;
      sched;
      rng;
      pool;
      config;
      disc = Queue_disc.create config.queue ~capacity:config.capacity ~rng;
      buffer = Ring.create ~dummy:Packet.Pool.dummy_pkt;
      deliver;
      wire_ids = Ring.create ~dummy:(-1);
      wire_pkts = Ring.create ~dummy:Packet.Pool.dummy_pkt;
      tx_thunk = ignore;
      deliver_thunk = ignore;
      busy = false;
      in_service = None;
      tx_event = None;
      up = true;
      down_since = 0.0;
      downtime_acc = 0.0;
      last_delivery = 0.0;
      offered = 0;
      dropped = 0;
      delivered = 0;
      bytes_delivered = 0;
      marked = 0;
      drop_hook = None;
      taps = None;
    }
  in
  t.tx_thunk <- (fun () -> complete_tx t);
  t.deliver_thunk <- (fun () -> deliver_front t);
  t

let set_registry t reg =
  t.taps <-
    Option.map
      (fun r ->
        {
          reg = r;
          src = Printf.sprintf "link.%s" t.id;
          qlen_s = Obs.Registry.series r (Printf.sprintf "link.%s.qlen" t.id);
          drops_c = Obs.Registry.counter r (Printf.sprintf "link.%s.drops" t.id);
          marks_c = Obs.Registry.counter r (Printf.sprintf "link.%s.marks" t.id);
          delivered_c =
            Obs.Registry.counter r (Printf.sprintf "link.%s.delivered" t.id);
        })
      reg;
  Queue_disc.set_registry t.disc reg ~id:t.id

let check_occupancy t =
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (Ring.length t.buffer <= Queue_disc.capacity t.disc)
      (fun () ->
        Printf.sprintf "Link %s: occupancy %d exceeds capacity %d" t.id
          (Ring.length t.buffer)
          (Queue_disc.capacity t.disc))

(* lint: hot send -- per-packet enqueue on every hop; event closures
   are shared per link (see the type comment) so this allocates nothing
   on the admit path *)
let send t pkt =
  t.offered <- t.offered + 1;
  if not t.up then
    (* A down link rejects every offer outright: the packet is counted
       as dropped (never silently lost) and the queue discipline is
       bypassed — no RED state update, no RNG draw. *)
    count_drop t pkt
  else begin
    let now = Sim.Scheduler.now t.sched in
    let decision =
      Queue_disc.on_arrival t.disc ~now ~qlen:(Ring.length t.buffer)
    in
    (match t.taps with
    | None -> ()
    | Some taps -> (
        Obs.Series.add taps.qlen_s ~time:now
          (float_of_int (Ring.length t.buffer));
        match decision with
        | `Drop ->
            Obs.Registry.incr taps.drops_c;
            Obs.Registry.emit taps.reg ~time:now ~source:taps.src
              ~event:"drop"
              ~value:(float_of_int (Ring.length t.buffer))
        | `Mark ->
            Obs.Registry.incr taps.marks_c;
            Obs.Registry.emit taps.reg ~time:now ~source:taps.src
              ~event:"mark"
              ~value:(float_of_int (Ring.length t.buffer))
        | `Admit -> ()));
    match decision with
    | `Drop -> begin
        t.dropped <- t.dropped + 1;
        (match t.drop_hook with None -> () | Some hook -> hook pkt);
        Packet.Pool.release t.pool pkt
      end
    | `Admit ->
        Ring.push t.buffer pkt;
        check_occupancy t;
        if not t.busy then start_transmission t
    | `Mark ->
        t.marked <- t.marked + 1;
        (* Mark in place when this link is the sole owner; a packet
           shared by a multicast fan-out gets a private marked copy
           (same uid) so sibling branches keep the unmarked original. *)
        let marked_pkt =
          if pkt.Packet.refs = 1 then begin
            pkt.Packet.ecn <- true;
            pkt
          end
          else begin
            let c = Packet.Pool.acquire_copy t.pool pkt in
            c.Packet.ecn <- true;
            Packet.Pool.release t.pool pkt;
            c
          end
        in
        Ring.push t.buffer marked_pkt;
        check_occupancy t;
        if not t.busy then start_transmission t
  end

(* --- runtime reconfiguration (fault injection) --------------------- *)

let set_bandwidth t bps =
  if bps <= 0.0 then invalid_arg "Link.set_bandwidth: must be positive";
  (* The packet in service keeps its already-scheduled completion (it
     started serializing at the old rate); later packets use the new
     one.  FIFO holds: completions are strictly sequential and
     deliveries are clamped in [propagate]. *)
  t.config <- { t.config with bandwidth_bps = bps }

let set_delay t delay =
  if delay < 0.0 then invalid_arg "Link.set_delay: negative delay";
  t.config <- { t.config with prop_delay = delay }

let set_down t =
  if t.up then begin
    t.up <- false;
    t.down_since <- Sim.Scheduler.now t.sched;
    (* The packet being serialized is aborted and lost; packets already
       past serialization (propagating) are on the wire and still
       arrive. *)
    (match t.tx_event with
    | None -> ()
    | Some ev ->
        Sim.Scheduler.cancel t.sched ev;
        t.tx_event <- None);
    let was_busy = t.busy in
    (match t.in_service with
    | None -> ()
    | Some pkt ->
        t.in_service <- None;
        count_drop t pkt);
    t.busy <- false;
    (* Everything queued behind it is flushed into the drop count. *)
    let rec flush () =
      match Ring.pop t.buffer with
      | None -> ()
      | Some pkt ->
          count_drop t pkt;
          flush ()
    in
    flush ();
    if was_busy then Queue_disc.on_empty t.disc ~now:(Sim.Scheduler.now t.sched)
  end

let set_up t =
  if not t.up then begin
    t.up <- true;
    t.downtime_acc <-
      t.downtime_acc +. (Sim.Scheduler.now t.sched -. t.down_since)
  end

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_bandwidth_bps : float;
  s_prop_delay : float;
  s_buffer : Packet.t list;  (* FIFO order, head of line first *)
  s_busy : bool;
  s_in_service : Packet.t option;
  s_tx_event : Sim.Scheduler.event_id option;
  s_inflight : (Sim.Scheduler.event_id * Packet.t) list;  (* ascending id *)
  s_up : bool;
  s_down_since : float;
  s_downtime_acc : float;
  s_last_delivery : float;
  s_offered : int;
  s_dropped : int;
  s_delivered : int;
  s_bytes_delivered : int;
  s_marked : int;
  s_rng : int64;
  s_disc : Queue_disc.state;
}

(* Captured packets are private copies: live packets are recycled
   through the pool as the simulation advances, so a state that shared
   records with the running link would be silently rewritten.  The
   copies are plain records with one reference, valid whether the state
   is serialized or restored in-memory later. *)
let snapshot_pkt (p : Packet.t) = { p with Packet.refs = 1 }

let capture t =
  let wire =
    List.map2
      (fun id pkt -> (id, snapshot_pkt pkt))
      (Ring.capture t.wire_ids)
      (Ring.capture t.wire_pkts)
  in
  {
    s_bandwidth_bps = t.config.bandwidth_bps;
    s_prop_delay = t.config.prop_delay;
    s_buffer = List.map snapshot_pkt (Ring.capture t.buffer);
    s_busy = t.busy;
    s_in_service = Option.map snapshot_pkt t.in_service;
    s_tx_event = t.tx_event;
    s_inflight = wire;
    s_up = t.up;
    s_down_since = t.down_since;
    s_downtime_acc = t.downtime_acc;
    s_last_delivery = t.last_delivery;
    s_offered = t.offered;
    s_dropped = t.dropped;
    s_delivered = t.delivered;
    s_bytes_delivered = t.bytes_delivered;
    s_marked = t.marked;
    s_rng = Sim.Rng.state t.rng;
    s_disc = Queue_disc.capture t.disc;
  }

(* Must run after [Sim.Scheduler.restore]: the tx-completion and every
   in-flight delivery re-arm under their original event ids.  The RNG
   is set once here — the queue discipline shares the same generator.
   Installed packets are copies of the state's (the state stays
   pristine if restored again). *)
let restore t st =
  t.config <-
    {
      t.config with
      bandwidth_bps = st.s_bandwidth_bps;
      prop_delay = st.s_prop_delay;
    };
  Ring.restore t.buffer (List.map snapshot_pkt st.s_buffer);
  t.busy <- st.s_busy;
  t.in_service <- Option.map snapshot_pkt st.s_in_service;
  t.tx_event <- st.s_tx_event;
  (match (st.s_tx_event, t.in_service) with
  | Some id, Some _ -> Sim.Scheduler.rearm t.sched ~id t.tx_thunk
  | Some id, None ->
      invalid_arg
        (Printf.sprintf "Link.restore: %s: tx event %d with nothing in service"
           t.id id)
  | None, _ -> ());
  Ring.restore t.wire_ids (List.map fst st.s_inflight);
  Ring.restore t.wire_pkts (List.map (fun (_, p) -> snapshot_pkt p) st.s_inflight);
  List.iter
    (fun (id, _) -> Sim.Scheduler.rearm t.sched ~id t.deliver_thunk)
    st.s_inflight;
  t.up <- st.s_up;
  t.down_since <- st.s_down_since;
  t.downtime_acc <- st.s_downtime_acc;
  t.last_delivery <- st.s_last_delivery;
  t.offered <- st.s_offered;
  t.dropped <- st.s_dropped;
  t.delivered <- st.s_delivered;
  t.bytes_delivered <- st.s_bytes_delivered;
  t.marked <- st.s_marked;
  Sim.Rng.set_state t.rng st.s_rng;
  Queue_disc.restore t.disc st.s_disc
