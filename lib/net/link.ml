type config = {
  bandwidth_bps : float;
  prop_delay : float;
  queue : Queue_disc.kind;
  capacity : int;
  phase_jitter : bool;
}

type stats = {
  offered : int;
  dropped : int;
  delivered : int;
  bytes_delivered : int;
  marked : int;
}

type t = {
  id : string;
  sched : Sim.Scheduler.t;
  rng : Sim.Rng.t;
  mutable config : config;
  disc : Queue_disc.t;
  buffer : Packet.t Queue.t;
  deliver : Packet.t -> unit;
  (* Packets past serialization, keyed by their delivery event id, so a
     checkpoint can re-arm every delivery still on the wire. *)
  inflight : (Sim.Scheduler.event_id, Packet.t) Hashtbl.t;
  mutable busy : bool;
  mutable in_service : Packet.t option;
  mutable tx_event : Sim.Scheduler.event_id option;
  mutable up : bool;
  mutable down_since : float;
  mutable downtime_acc : float;
  mutable last_delivery : float;
  mutable offered : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable marked : int;
  mutable drop_hook : (Packet.t -> unit) option;
  mutable taps : taps option;
}

and taps = {
  reg : Obs.Registry.t;
  qlen_s : Obs.Series.t;  (* occupancy sampled on every arrival *)
  drops_c : Obs.Registry.counter;
  marks_c : Obs.Registry.counter;
  delivered_c : Obs.Registry.counter;
}

let create ~sched ~rng ~id config ~deliver =
  if config.bandwidth_bps <= 0.0 then
    invalid_arg "Link.create: bandwidth must be positive";
  if config.prop_delay < 0.0 then
    invalid_arg "Link.create: negative propagation delay";
  {
    id;
    sched;
    rng;
    config;
    disc = Queue_disc.create config.queue ~capacity:config.capacity ~rng;
    buffer = Queue.create ();
    deliver;
    inflight = Hashtbl.create 16;
    busy = false;
    in_service = None;
    tx_event = None;
    up = true;
    down_since = 0.0;
    downtime_acc = 0.0;
    last_delivery = 0.0;
    offered = 0;
    dropped = 0;
    delivered = 0;
    bytes_delivered = 0;
    marked = 0;
    drop_hook = None;
    taps = None;
  }

let set_registry t reg =
  t.taps <-
    Option.map
      (fun r ->
        {
          reg = r;
          qlen_s = Obs.Registry.series r (Printf.sprintf "link.%s.qlen" t.id);
          drops_c = Obs.Registry.counter r (Printf.sprintf "link.%s.drops" t.id);
          marks_c = Obs.Registry.counter r (Printf.sprintf "link.%s.marks" t.id);
          delivered_c =
            Obs.Registry.counter r (Printf.sprintf "link.%s.delivered" t.id);
        })
      reg;
  Queue_disc.set_registry t.disc reg ~id:t.id

let id t = t.id

let config t = t.config

let qlen t = Queue.length t.buffer

let busy t = t.busy

let is_up t = t.up

let service_time t size = float_of_int (size * 8) /. t.config.bandwidth_bps

let stats t =
  {
    offered = t.offered;
    dropped = t.dropped;
    delivered = t.delivered;
    bytes_delivered = t.bytes_delivered;
    marked = t.marked;
  }

let reset_stats t =
  t.offered <- 0;
  t.dropped <- 0;
  t.delivered <- 0;
  t.bytes_delivered <- 0;
  t.marked <- 0

let set_drop_hook t hook = t.drop_hook <- Some hook

let avg_queue t = Queue_disc.avg_queue t.disc

let downtime t =
  t.downtime_acc
  +. if t.up then 0.0 else Sim.Scheduler.now t.sched -. t.down_since

let count_drop t pkt =
  t.dropped <- t.dropped + 1;
  (match t.taps with
  | None -> ()
  | Some taps ->
      Obs.Registry.incr taps.drops_c;
      Obs.Registry.emit taps.reg
        ~time:(Sim.Scheduler.now t.sched)
        ~source:(Printf.sprintf "link.%s" t.id)
        ~event:"drop"
        ~value:(float_of_int (Queue.length t.buffer)));
  match t.drop_hook with None -> () | Some hook -> hook pkt

(* Deliver after propagation (+ optional phase jitter of up to one
   service time, section 3.1 of the paper).  The jitter is drawn
   independently per packet, so a small packet chasing a large one
   could otherwise overtake it; clamping each delivery to the link's
   last scheduled delivery keeps the link FIFO (ties fire in
   scheduling order, preserving arrival order).  The clamp also covers
   runtime reconfiguration: shrinking [prop_delay] or growing
   [bandwidth_bps] mid-run cannot schedule a delivery before one
   already on the wire. *)
let deliver_inflight t id pkt =
  Hashtbl.remove t.inflight id;
  t.deliver pkt

let propagate t pkt =
  let jitter =
    if t.config.phase_jitter then
      Sim.Rng.float t.rng (service_time t pkt.Packet.size)
    else 0.0
  in
  let at =
    Stdlib.max
      (Sim.Scheduler.now t.sched +. t.config.prop_delay +. jitter)
      t.last_delivery
  in
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (at >= t.last_delivery && at >= Sim.Scheduler.now t.sched)
      (fun () ->
        Printf.sprintf
          "Link %s: delivery at %g would overtake last delivery %g (now %g)"
          t.id at t.last_delivery
          (Sim.Scheduler.now t.sched));
  t.last_delivery <- at;
  (* The event id is only known once scheduled; the closure dereferences
     it at fire time, strictly after this binding completes. *)
  let rid = ref (-1) in
  let id =
    Sim.Scheduler.schedule_at t.sched at (fun () ->
        deliver_inflight t !rid pkt)
  in
  rid := id;
  Hashtbl.replace t.inflight id pkt

let rec complete_tx t pkt () =
  t.tx_event <- None;
  t.in_service <- None;
  t.delivered <- t.delivered + 1;
  t.bytes_delivered <- t.bytes_delivered + pkt.Packet.size;
  (match t.taps with
  | None -> ()
  | Some taps -> Obs.Registry.incr taps.delivered_c);
  propagate t pkt;
  start_transmission t

and start_transmission t =
  match Queue.take_opt t.buffer with
  | None ->
      t.busy <- false;
      Queue_disc.on_empty t.disc ~now:(Sim.Scheduler.now t.sched)
  | Some pkt ->
      t.busy <- true;
      t.in_service <- Some pkt;
      let tx = service_time t pkt.Packet.size in
      t.tx_event <- Some (Sim.Scheduler.schedule_after t.sched tx (complete_tx t pkt))

let check_occupancy t =
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (Queue.length t.buffer <= Queue_disc.capacity t.disc)
      (fun () ->
        Printf.sprintf "Link %s: occupancy %d exceeds capacity %d" t.id
          (Queue.length t.buffer)
          (Queue_disc.capacity t.disc))

let send t pkt =
  t.offered <- t.offered + 1;
  if not t.up then
    (* A down link rejects every offer outright: the packet is counted
       as dropped (never silently lost) and the queue discipline is
       bypassed — no RED state update, no RNG draw. *)
    count_drop t pkt
  else begin
    let now = Sim.Scheduler.now t.sched in
    let decision =
      Queue_disc.on_arrival t.disc ~now ~qlen:(Queue.length t.buffer)
    in
    (match t.taps with
    | None -> ()
    | Some taps -> (
        Obs.Series.add taps.qlen_s ~time:now
          (float_of_int (Queue.length t.buffer));
        match decision with
        | `Drop ->
            Obs.Registry.incr taps.drops_c;
            Obs.Registry.emit taps.reg ~time:now
              ~source:(Printf.sprintf "link.%s" t.id)
              ~event:"drop"
              ~value:(float_of_int (Queue.length t.buffer))
        | `Mark ->
            Obs.Registry.incr taps.marks_c;
            Obs.Registry.emit taps.reg ~time:now
              ~source:(Printf.sprintf "link.%s" t.id)
              ~event:"mark"
              ~value:(float_of_int (Queue.length t.buffer))
        | `Admit -> ()));
    match decision with
    | `Drop -> begin
        t.dropped <- t.dropped + 1;
        match t.drop_hook with None -> () | Some hook -> hook pkt
      end
    | `Admit ->
        Queue.add pkt t.buffer;
        check_occupancy t;
        if not t.busy then start_transmission t
    | `Mark ->
        t.marked <- t.marked + 1;
        Queue.add { pkt with Packet.ecn = true } t.buffer;
        check_occupancy t;
        if not t.busy then start_transmission t
  end

(* --- runtime reconfiguration (fault injection) --------------------- *)

let set_bandwidth t bps =
  if bps <= 0.0 then invalid_arg "Link.set_bandwidth: must be positive";
  (* The packet in service keeps its already-scheduled completion (it
     started serializing at the old rate); later packets use the new
     one.  FIFO holds: completions are strictly sequential and
     deliveries are clamped in [propagate]. *)
  t.config <- { t.config with bandwidth_bps = bps }

let set_delay t delay =
  if delay < 0.0 then invalid_arg "Link.set_delay: negative delay";
  t.config <- { t.config with prop_delay = delay }

let set_down t =
  if t.up then begin
    t.up <- false;
    t.down_since <- Sim.Scheduler.now t.sched;
    (* The packet being serialized is aborted and lost; packets already
       past serialization (propagating) are on the wire and still
       arrive. *)
    (match t.tx_event with
    | None -> ()
    | Some ev ->
        Sim.Scheduler.cancel t.sched ev;
        t.tx_event <- None);
    let was_busy = t.busy in
    (match t.in_service with
    | None -> ()
    | Some pkt ->
        t.in_service <- None;
        count_drop t pkt);
    t.busy <- false;
    (* Everything queued behind it is flushed into the drop count. *)
    while not (Queue.is_empty t.buffer) do
      count_drop t (Queue.take t.buffer)
    done;
    if was_busy then Queue_disc.on_empty t.disc ~now:(Sim.Scheduler.now t.sched)
  end

let set_up t =
  if not t.up then begin
    t.up <- true;
    t.downtime_acc <-
      t.downtime_acc +. (Sim.Scheduler.now t.sched -. t.down_since)
  end

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_bandwidth_bps : float;
  s_prop_delay : float;
  s_buffer : Packet.t list;  (* FIFO order, head of line first *)
  s_busy : bool;
  s_in_service : Packet.t option;
  s_tx_event : Sim.Scheduler.event_id option;
  s_inflight : (Sim.Scheduler.event_id * Packet.t) list;  (* ascending id *)
  s_up : bool;
  s_down_since : float;
  s_downtime_acc : float;
  s_last_delivery : float;
  s_offered : int;
  s_dropped : int;
  s_delivered : int;
  s_bytes_delivered : int;
  s_marked : int;
  s_rng : int64;
  s_disc : Queue_disc.state;
}

let capture t =
  {
    s_bandwidth_bps = t.config.bandwidth_bps;
    s_prop_delay = t.config.prop_delay;
    s_buffer = List.of_seq (Queue.to_seq t.buffer);
    s_busy = t.busy;
    s_in_service = t.in_service;
    s_tx_event = t.tx_event;
    s_inflight =
      Hashtbl.fold (fun id pkt acc -> (id, pkt) :: acc) t.inflight []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    s_up = t.up;
    s_down_since = t.down_since;
    s_downtime_acc = t.downtime_acc;
    s_last_delivery = t.last_delivery;
    s_offered = t.offered;
    s_dropped = t.dropped;
    s_delivered = t.delivered;
    s_bytes_delivered = t.bytes_delivered;
    s_marked = t.marked;
    s_rng = Sim.Rng.state t.rng;
    s_disc = Queue_disc.capture t.disc;
  }

(* Must run after [Sim.Scheduler.restore]: the tx-completion and every
   in-flight delivery re-arm under their original event ids.  The RNG
   is set once here — the queue discipline shares the same generator. *)
let restore t st =
  t.config <-
    {
      t.config with
      bandwidth_bps = st.s_bandwidth_bps;
      prop_delay = st.s_prop_delay;
    };
  Queue.clear t.buffer;
  List.iter (fun pkt -> Queue.add pkt t.buffer) st.s_buffer;
  t.busy <- st.s_busy;
  t.in_service <- st.s_in_service;
  t.tx_event <- st.s_tx_event;
  (match (st.s_tx_event, st.s_in_service) with
  | Some id, Some pkt -> Sim.Scheduler.rearm t.sched ~id (complete_tx t pkt)
  | Some id, None ->
      invalid_arg
        (Printf.sprintf "Link.restore: %s: tx event %d with nothing in service"
           t.id id)
  | None, _ -> ());
  Hashtbl.reset t.inflight;
  List.iter
    (fun (id, pkt) ->
      Hashtbl.replace t.inflight id pkt;
      Sim.Scheduler.rearm t.sched ~id (fun () -> deliver_inflight t id pkt))
    st.s_inflight;
  t.up <- st.s_up;
  t.down_since <- st.s_down_since;
  t.downtime_acc <- st.s_downtime_acc;
  t.last_delivery <- st.s_last_delivery;
  t.offered <- st.s_offered;
  t.dropped <- st.s_dropped;
  t.delivered <- st.s_delivered;
  t.bytes_delivered <- st.s_bytes_delivered;
  t.marked <- st.s_marked;
  Sim.Rng.set_state t.rng st.s_rng;
  Queue_disc.restore t.disc st.s_disc
