type t = {
  id : Packet.addr;
  pool : Packet.Pool.t;
  routes : (Packet.addr, Link.t) Hashtbl.t;
  mcast : (Packet.group, Link.t list ref) Hashtbl.t;
  groups : (Packet.group, unit) Hashtbl.t;
  handlers : (Packet.flow, Packet.t -> unit) Hashtbl.t;
  mutable undeliverable : int;
}

let create ~pool id =
  {
    id;
    pool;
    routes = Hashtbl.create 16;
    mcast = Hashtbl.create 4;
    groups = Hashtbl.create 4;
    handlers = Hashtbl.create 8;
    undeliverable = 0;
  }

let id t = t.id

let set_route t ~dest link = Hashtbl.replace t.routes dest link

let route t ~dest = Hashtbl.find_opt t.routes dest

let add_mcast_route t ~group link =
  match Hashtbl.find_opt t.mcast group with
  | None -> Hashtbl.replace t.mcast group (ref [ link ])
  | Some links ->
      if not (List.exists (fun l -> Link.id l = Link.id link) !links) then
        links := !links @ [ link ]

let mcast_routes t ~group =
  match Hashtbl.find_opt t.mcast group with None -> [] | Some l -> !l

let join t ~group = Hashtbl.replace t.groups group ()

let joined t ~group = Hashtbl.mem t.groups group

let attach t ~flow handler = Hashtbl.replace t.handlers flow handler

let detach t ~flow = Hashtbl.remove t.handlers flow

(* Handlers may read the packet for the duration of the call only; the
   caller still owns the reference and releases (or forwards) it after
   the handler returns. *)
let deliver_local t pkt =
  match Hashtbl.find_opt t.handlers pkt.Packet.flow with
  | Some handler -> handler pkt
  | None -> t.undeliverable <- t.undeliverable + 1

(* [receive] owns one reference to [pkt] and settles it on every path:
   terminal deliveries (and undeliverable packets) release it back to
   the pool, each forwarding [Link.send] consumes one reference, and a
   multicast fan-out over [n] links retains [n - 1] extra references
   up front so every branch owns its own claim on the shared record. *)
let receive t pkt =
  match pkt.Packet.dst with
  | Packet.Unicast a when a = t.id ->
      deliver_local t pkt;
      Packet.Pool.release t.pool pkt
  | Packet.Unicast a -> (
      match route t ~dest:a with
      | Some link -> Link.send link pkt
      | None ->
          t.undeliverable <- t.undeliverable + 1;
          Packet.Pool.release t.pool pkt)
  | Packet.Multicast g -> (
      if joined t ~group:g then deliver_local t pkt;
      match mcast_routes t ~group:g with
      | [] -> Packet.Pool.release t.pool pkt
      | [ link ] -> Link.send link pkt
      | first :: rest ->
          List.iter (fun _ -> Packet.Pool.retain pkt) rest;
          Link.send first pkt;
          List.iter (fun link -> Link.send link pkt) rest)

let undeliverable t = t.undeliverable

(* Routes, multicast branches, group membership and flow handlers are
   topology wiring, rebuilt deterministically by the experiment setup;
   the undeliverable count is the node's only simulation state. *)
let capture t = t.undeliverable

let restore t n = t.undeliverable <- n
