(** Network assembly: nodes, duplex links, routing, multicast trees.

    This is the top-level substrate object an experiment builds once:
    it owns the scheduler, the root RNG (every component receives a
    {!Sim.Rng.split} of it, so runs are reproducible from one seed),
    and allocators for flow and packet identifiers. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh empty network; [seed] defaults to 1. *)

val scheduler : t -> Sim.Scheduler.t

val rng : t -> Sim.Rng.t
(** The root RNG; prefer {!fork_rng} for components. *)

val pool : t -> Packet.Pool.t
(** The network-wide packet pool; every node and link recycles through
    it. *)

val fork_rng : t -> Sim.Rng.t
(** An independent RNG stream. *)

val trace : t -> Sim.Trace.t

val set_registry : t -> Obs.Registry.t option -> unit
(** Install (or remove) a metrics registry: the scheduler and every
    link — existing and created later — pick it up, and components
    built afterwards (TCP and RLA senders) read {!observer} at creation
    time.  Instrumentation is passive (no scheduled events, no RNG
    draws), so runs are bit-identical with or without a registry. *)

val observer : t -> Obs.Registry.t option
(** The currently installed registry, if any. *)

val now : t -> float

val add_node : t -> Node.t
(** Create a node with the next free address. *)

val add_node_at : t -> Packet.addr -> Node.t
(** Create a node at an explicit address, leaving any skipped addresses
    as gaps ([node] raises [Not_found] for them).  This lets a shard of
    a partitioned topology keep global addresses locally.  Sparse
    networks cannot be captured (see {!capture}).  Raises
    [Invalid_argument] if the address is negative or occupied. *)

val node : t -> Packet.addr -> Node.t
(** Raises [Not_found] for an unknown or gap address. *)

val node_count : t -> int

val duplex : t -> Packet.addr -> Packet.addr -> Link.config -> Link.t * Link.t
(** [duplex t a b config] connects [a] and [b] with two mirror-image
    links; returns [(a->b, b->a)]. *)

val link_between : t -> Packet.addr -> Packet.addr -> Link.t option
(** The directed link from the first to the second address, if any. *)

val links : t -> Link.t list
(** All links, in creation order. *)

val neighbors : t -> Packet.addr -> Packet.addr list
(** Nodes with a directed link from the given address, in link
    creation order (stable, duplicate-free). *)

val install_routes : t -> unit
(** Fill every node's unicast table with shortest (hop-count) paths.
    Call after the topology is complete; idempotent. *)

val install_multicast : t -> group:Packet.group -> src:Packet.addr -> members:Packet.addr list -> unit
(** Build the distribution tree for [group] as the union of the unicast
    shortest paths from [src] to each member, and [Node.join] every
    member.  Requires {!install_routes} to have run. *)

val graft_multicast : t -> group:Packet.group -> src:Packet.addr -> member:Packet.addr -> unit
(** Add one member to an existing distribution tree (runtime membership
    churn): join it at its node and add the shortest-path branch from
    [src].  Idempotent — grafting a current member changes nothing. *)

val fresh_flow : t -> Packet.flow

val set_flow_base : t -> Packet.flow -> unit
(** Raise the flow allocator so subsequent {!fresh_flow} calls start at
    [base] — shards of a parallel run use disjoint bases so flow ids
    stay globally unique.  Raises [Invalid_argument] if flows at or
    beyond [base] were already allocated. *)

val fresh_group : t -> Packet.group

val make_packet :
  t ->
  flow:Packet.flow ->
  src:Packet.addr ->
  dst:Packet.dest ->
  size:int ->
  payload:Packet.payload ->
  Packet.t
(** A pooled packet stamped with the current time and a fresh uid; the
    caller owns its single reference (normally settled by passing it to
    {!send}). *)

val send : t -> Packet.t -> unit
(** Inject a packet at its source node; consumes the caller's packet
    reference. *)

val import_packet :
  t ->
  flow:Packet.flow ->
  src:Packet.addr ->
  dst:Packet.dest ->
  size:int ->
  payload:Packet.payload ->
  born:float ->
  ecn:bool ->
  Packet.t
(** Materialize a packet that originated on another network (a
    different shard of a parallel run): a fresh local uid, with the
    original flow, endpoints, birth time and ECN mark preserved.  The
    caller owns the single reference. *)

val run_until : t -> float -> unit

val path : t -> Packet.addr -> Packet.addr -> Link.t list
(** Links traversed by unicast traffic between the two addresses
    (empty if equal or unrouted). *)

(** {2 Checkpoint/restore} *)

type state = {
  s_root_rng : int64;
  s_next_flow : int;
  s_next_group : int;
  s_next_uid : int;
  s_nodes : int list;  (** per-node undeliverable counts, by address *)
  s_links : Link.state list;  (** in {!links} (creation) order *)
}

val capture : t -> state
(** Pure read of all mutable network state.  The scheduler is captured
    separately ([Sim.Scheduler.capture]); topology is not serialized at
    all — restore targets an identically rebuilt network.  Raises
    [Invalid_argument] on a sparse network (gap addresses from
    {!add_node_at}): shard-local slices are not capturable. *)

val restore : t -> state -> unit
(** Overwrite mutable state on a network rebuilt by the same
    deterministic setup (same node/link creation order).  Links re-arm
    their pending events, so [Sim.Scheduler.restore] must have run
    first.  Raises [Invalid_argument] on a node/link count mismatch. *)
