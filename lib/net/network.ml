type t = {
  sched : Sim.Scheduler.t;
  root_rng : Sim.Rng.t;
  pool : Packet.Pool.t;
  trace : Sim.Trace.t;
  mutable nodes : Node.t array;
  mutable n_nodes : int;
  directed : (Packet.addr * Packet.addr, Link.t) Hashtbl.t;
  mutable link_list : Link.t list;  (* reverse creation order *)
  (* Per-node neighbor lists in reverse insertion order; [edges] gives
     O(1) duplicate detection so topology build stays O(E) instead of
     O(deg^2) per node. *)
  adjacency : (Packet.addr, Packet.addr list ref) Hashtbl.t;
  edges : (Packet.addr * Packet.addr, unit) Hashtbl.t;
  mutable next_flow : int;
  mutable next_group : int;
  mutable next_uid : int;
  mutable routed : bool;
  mutable observer : Obs.Registry.t option;
}

let create ?(seed = 1) () =
  {
    sched = Sim.Scheduler.create ();
    root_rng = Sim.Rng.create seed;
    pool = Packet.Pool.create ();
    trace = Sim.Trace.create ();
    nodes = [||];
    n_nodes = 0;
    directed = Hashtbl.create 64;
    link_list = [];
    adjacency = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    next_flow = 0;
    next_group = 0;
    next_uid = 0;
    routed = false;
    observer = None;
  }

let scheduler t = t.sched

let rng t = t.root_rng

let pool t = t.pool

let fork_rng t = Sim.Rng.split t.root_rng

let trace t = t.trace

let observer t = t.observer

let set_registry t reg =
  t.observer <- reg;
  Sim.Scheduler.set_registry t.sched reg;
  List.iter (fun link -> Link.set_registry link reg) t.link_list

let now t = Sim.Scheduler.now t.sched

(* Sparse networks (shard-local slices of a global address space) fill
   gap slots with an aliased filler node whose [Node.id] differs from
   the slot index; [node] treats those slots as absent. *)
let add_node_at t addr =
  if addr < 0 then invalid_arg "Network.add_node_at: negative address";
  if addr < t.n_nodes && Node.id t.nodes.(addr) = addr then
    invalid_arg
      (Printf.sprintf "Network.add_node_at: node %d already exists" addr);
  let node = Node.create ~pool:t.pool addr in
  if addr >= Array.length t.nodes then begin
    let grown =
      Array.make
        (Stdlib.max 8 (Stdlib.max (addr + 1) (2 * Array.length t.nodes)))
        node
    in
    Array.blit t.nodes 0 grown 0 t.n_nodes;
    t.nodes <- grown
  end;
  t.nodes.(addr) <- node;
  if addr >= t.n_nodes then t.n_nodes <- addr + 1;
  node

let add_node t = add_node_at t t.n_nodes

let node t addr =
  if addr < 0 || addr >= t.n_nodes then raise Not_found;
  let n = t.nodes.(addr) in
  if Node.id n <> addr then raise Not_found;
  n

let node_count t = t.n_nodes

let add_neighbor t a b =
  if not (Hashtbl.mem t.edges (a, b)) then begin
    Hashtbl.replace t.edges (a, b) ();
    match Hashtbl.find_opt t.adjacency a with
    | None -> Hashtbl.replace t.adjacency a (ref [ b ])
    | Some l -> l := b :: !l
  end

let one_way t a b config =
  let dst_node = node t b in
  let id = Printf.sprintf "%d->%d" a b in
  let link =
    Link.create ~sched:t.sched ~rng:(fork_rng t) ~pool:t.pool ~id config
      ~deliver:(fun pkt -> Node.receive dst_node pkt)
  in
  Hashtbl.replace t.directed (a, b) link;
  t.link_list <- link :: t.link_list;
  add_neighbor t a b;
  (match t.observer with
  | None -> ()
  | Some _ -> Link.set_registry link t.observer);
  link

let duplex t a b config =
  if a = b then invalid_arg "Network.duplex: self loop";
  ignore (node t a);
  let ab = one_way t a b config in
  let ba = one_way t b a config in
  t.routed <- false;
  (ab, ba)

let link_between t a b = Hashtbl.find_opt t.directed (a, b)

let links t = List.rev t.link_list

(* Reversing restores insertion order, keeping BFS routing (and thus
   route selection) deterministic and identical to the append-based
   construction this replaces. *)
let neighbors t a =
  match Hashtbl.find_opt t.adjacency a with
  | None -> []
  | Some l -> List.rev !l

(* BFS from [dest]; parent.(v) is the next node on v's shortest path
   towards [dest]. *)
let bfs_parents t dest =
  let parent = Array.make t.n_nodes (-1) in
  let visited = Array.make t.n_nodes false in
  visited.(dest) <- true;
  let frontier = Queue.create () in
  Queue.add dest frontier;
  while not (Queue.is_empty frontier) do
    let u = Queue.take frontier in
    List.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- u;
          Queue.add v frontier
        end)
      (neighbors t u)
  done;
  parent

let install_routes t =
  for dest = 0 to t.n_nodes - 1 do
    let parent = bfs_parents t dest in
    for v = 0 to t.n_nodes - 1 do
      if v <> dest && parent.(v) >= 0 then
        match link_between t v parent.(v) with
        | Some link -> Node.set_route t.nodes.(v) ~dest link
        | None -> ()
    done
  done;
  t.routed <- true

let require_routes t caller =
  if not t.routed then
    invalid_arg (caller ^ ": call Network.install_routes first")

let path t a b =
  require_routes t "Network.path";
  let rec walk v acc =
    if v = b then List.rev acc
    else
      match Node.route (node t v) ~dest:b with
      | None -> []
      | Some link -> (
          (* The link id encodes "src->dst"; recover the next hop from
             the routing table by scanning neighbors. *)
          match
            List.find_opt
              (fun w ->
                match link_between t v w with
                | Some l -> Link.id l = Link.id link
                | None -> false)
              (neighbors t v)
          with
          | None -> []
          | Some w -> walk w (link :: acc))
  in
  if a = b then [] else walk a []

(* Graft one member onto the distribution tree: join it at its node and
   add the links of the unicast shortest path from [src] as multicast
   branches.  Idempotent (duplicate branches are ignored), so it serves
   both initial tree construction and runtime membership churn. *)
let graft_multicast t ~group ~src ~member =
  require_routes t "Network.graft_multicast";
  let m = member in
  Node.join (node t m) ~group;
  let rec walk v =
    if v <> m then
      match Node.route (node t v) ~dest:m with
      | None -> ()
      | Some link -> (
          match
            List.find_opt
              (fun w ->
                match link_between t v w with
                | Some l -> Link.id l = Link.id link
                | None -> false)
              (neighbors t v)
          with
          | None -> ()
          | Some w ->
              Node.add_mcast_route (node t v) ~group link;
              walk w)
  in
  walk src

let install_multicast t ~group ~src ~members =
  require_routes t "Network.install_multicast";
  List.iter (fun member -> graft_multicast t ~group ~src ~member) members

let fresh_flow t =
  let f = t.next_flow in
  t.next_flow <- f + 1;
  f

let set_flow_base t base =
  if base < t.next_flow then
    invalid_arg
      (Printf.sprintf
         "Network.set_flow_base: base %d is below already-allocated flow %d"
         base t.next_flow);
  t.next_flow <- base

let fresh_group t =
  let g = t.next_group in
  t.next_group <- g + 1;
  g

let make_packet t ~flow ~src ~dst ~size ~payload =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  Packet.Pool.acquire t.pool ~uid ~flow ~src ~dst ~size ~payload ~born:(now t)

let send t pkt = Node.receive (node t pkt.Packet.src) pkt

(* Materialize a packet arriving from outside this network (another
   shard of a parallel run): a fresh local uid, but the original flow,
   endpoints, birth time and ECN state carried over.  Mirrors the
   link-layer copy-on-write mark: the field is set while this side
   holds the only reference. *)
let import_packet t ~flow ~src ~dst ~size ~payload ~born ~ecn =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let pkt = Packet.Pool.acquire t.pool ~uid ~flow ~src ~dst ~size ~payload ~born in
  if ecn then pkt.Packet.ecn <- true;
  pkt

let run_until t horizon = Sim.Scheduler.run_until t.sched horizon

(* --- checkpoint/restore -------------------------------------------- *)

type state = {
  s_root_rng : int64;
  s_next_flow : int;
  s_next_group : int;
  s_next_uid : int;
  s_nodes : int list;  (* undeliverable counts, by address *)
  s_links : Link.state list;  (* creation order *)
}

let capture t =
  {
    s_root_rng = Sim.Rng.state t.root_rng;
    s_next_flow = t.next_flow;
    s_next_group = t.next_group;
    s_next_uid = t.next_uid;
    s_nodes =
      List.init t.n_nodes (fun i ->
          let n = t.nodes.(i) in
          if Node.id n <> i then
            invalid_arg
              (Printf.sprintf
                 "Network.capture: address %d is a gap (sparse networks are \
                  not capturable)"
                 i);
          Node.capture n);
    s_links = List.map Link.capture (links t);
  }

(* The topology itself (nodes, links, routes, trees) is not serialized:
   restore targets a network rebuilt deterministically by the same
   experiment setup, and only overwrites mutable simulation state.
   Must run after [Sim.Scheduler.restore] (links re-arm their pending
   events); the scheduler is deliberately untouched here. *)
let restore t st =
  if List.length st.s_nodes <> t.n_nodes then
    invalid_arg
      (Printf.sprintf "Network.restore: %d nodes captured, %d present"
         (List.length st.s_nodes) t.n_nodes);
  let ls = links t in
  if List.length st.s_links <> List.length ls then
    invalid_arg
      (Printf.sprintf "Network.restore: %d links captured, %d present"
         (List.length st.s_links) (List.length ls));
  Sim.Rng.set_state t.root_rng st.s_root_rng;
  t.next_flow <- st.s_next_flow;
  t.next_group <- st.s_next_group;
  t.next_uid <- st.s_next_uid;
  List.iteri (fun i n -> Node.restore t.nodes.(i) n) st.s_nodes;
  List.iter2 Link.restore ls st.s_links
