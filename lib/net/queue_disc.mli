(** Queue disciplines for gateway buffers.

    Both disciplines enforce a hard physical capacity (packets waiting
    in the buffer); RED additionally drops early based on its average
    queue estimate. *)

type kind =
  | Droptail
  | Red_gateway of Red.params
  | Bernoulli_loss of float
      (** Drop-tail that additionally drops each arrival independently
          with the given probability — the idealised random-loss link
          used to validate the analytical window formulas. *)

type t

val create : kind -> capacity:int -> rng:Sim.Rng.t -> t
(** [capacity] is the buffer size in packets (the paper uses 20). *)

val kind : t -> kind

val set_registry : t -> Obs.Registry.t option -> id:string -> unit
(** Forward instrumentation to the underlying discipline (currently a
    no-op except for RED gateways; see {!Red.set_registry}). *)

val capacity : t -> int

val on_arrival : t -> now:float -> qlen:int -> [ `Admit | `Drop | `Mark ]
(** Decision for a packet arriving when [qlen] packets are waiting;
    [`Mark] admits the packet with its congestion-experienced bit set
    (ECN-enabled RED only). *)

val on_empty : t -> now:float -> unit
(** The buffer just drained (RED idle-time bookkeeping). *)

val avg_queue : t -> float
(** RED average queue estimate; instantaneous length is not tracked
    here, so for drop-tail this returns [nan]. *)

type state = Stateless | Red of Red.state
(** Drop-tail and Bernoulli disciplines are stateless here (the loss
    RNG is shared with — and captured by — the owning link). *)

val capture : t -> state

val restore : t -> state -> unit
(** Raises [Invalid_argument] if the captured state does not match the
    discipline kind (checkpoint/topology mismatch). *)
