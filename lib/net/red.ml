type params = {
  min_th : float;
  max_th : float;
  w_q : float;
  max_p : float;
  mean_pkt_time : float;
  ecn : bool;
}

let default_params ~mean_pkt_time =
  {
    min_th = 5.0;
    max_th = 15.0;
    w_q = 0.002;
    max_p = 0.1;
    mean_pkt_time;
    ecn = false;
  }

type taps = {
  avg_s : Obs.Series.t;
  early_drops_c : Obs.Registry.counter;
  marks_c : Obs.Registry.counter;
}

type t = {
  p : params;
  rng : Sim.Rng.t;
  mutable avg : float;
  mutable count : int;  (* packets since last drop while between thresholds *)
  mutable q_time : float;  (* start of the current idle period *)
  mutable idle : bool;
  mutable drops : int;
  mutable marks : int;
  mutable taps : taps option;
}

let create p ~rng =
  {
    p;
    rng;
    avg = 0.0;
    count = -1;
    q_time = 0.0;
    idle = true;
    drops = 0;
    marks = 0;
    taps = None;
  }

let set_registry t reg ~id =
  t.taps <-
    Option.map
      (fun r ->
        {
          avg_s = Obs.Registry.series r (Printf.sprintf "red.%s.avg_queue" id);
          early_drops_c =
            Obs.Registry.counter r (Printf.sprintf "red.%s.early_drops" id);
          marks_c = Obs.Registry.counter r (Printf.sprintf "red.%s.marks" id);
        })
      reg

let avg_queue t = t.avg

let note_empty t ~now =
  t.idle <- true;
  t.q_time <- now

(* Age the average across an idle period as if m small packets had been
   serviced, per the RED paper. *)
let update_avg t ~now ~qlen =
  if t.idle && qlen = 0 then begin
    let m = (now -. t.q_time) /. t.p.mean_pkt_time in
    let m = Stdlib.max 0.0 m in
    t.avg <- t.avg *. ((1.0 -. t.p.w_q) ** m)
  end
  else t.avg <- ((1.0 -. t.p.w_q) *. t.avg) +. (t.p.w_q *. float_of_int qlen)

let record_drop t =
  t.drops <- t.drops + 1;
  match t.taps with None -> () | Some taps -> Obs.Registry.incr taps.early_drops_c

let record_mark t =
  t.marks <- t.marks + 1;
  match t.taps with None -> () | Some taps -> Obs.Registry.incr taps.marks_c

let decide t ~now ~qlen =
  update_avg t ~now ~qlen;
  if !Sim.Invariant.enabled then
    Sim.Invariant.require
      (Float.is_finite t.avg && t.avg >= 0.0)
      (fun () ->
        Printf.sprintf "Red.decide: average queue %g is not a sane occupancy"
          t.avg);
  (match t.taps with
  | None -> ()
  | Some taps -> Obs.Series.add taps.avg_s ~time:now t.avg);
  t.idle <- false;
  if t.avg < t.p.min_th then begin
    t.count <- -1;
    `Admit
  end
  else if t.avg >= t.p.max_th then begin
    t.count <- 0;
    record_drop t;
    `Drop
  end
  else begin
    t.count <- t.count + 1;
    let p_b =
      t.p.max_p *. (t.avg -. t.p.min_th) /. (t.p.max_th -. t.p.min_th)
    in
    let denom = 1.0 -. (float_of_int t.count *. p_b) in
    let p_a = if denom <= 0.0 then 1.0 else p_b /. denom in
    if Sim.Rng.bernoulli t.rng p_a then begin
      t.count <- 0;
      if t.p.ecn then begin
        record_mark t;
        `Mark
      end
      else begin
        record_drop t;
        `Drop
      end
    end
    else `Admit
  end

let drops t = t.drops

let marks t = t.marks

(* The rng is shared with the owning link, which captures it once. *)
type state = {
  s_avg : float;
  s_count : int;
  s_q_time : float;
  s_idle : bool;
  s_drops : int;
  s_marks : int;
}

let capture t =
  {
    s_avg = t.avg;
    s_count = t.count;
    s_q_time = t.q_time;
    s_idle = t.idle;
    s_drops = t.drops;
    s_marks = t.marks;
  }

let restore t st =
  t.avg <- st.s_avg;
  t.count <- st.s_count;
  t.q_time <- st.s_q_time;
  t.idle <- st.s_idle;
  t.drops <- st.s_drops;
  t.marks <- st.s_marks
