(** Pure topology descriptions for generated scenarios.

    A [Topo.t] is just data: node count plus an ordered edge list,
    each edge carrying the {!Link.config} its duplex link will use.
    Generators are deterministic — the same parameters (and, for
    {!random_graph}, the same seed) always produce the same topology,
    byte for byte — so a topology can be rebuilt identically on every
    shard of a parallel run.  Nothing here touches a scheduler, a
    network or ambient randomness. *)

type edge = {
  u : int;
  v : int;
  config : Link.config;  (** Applied to both directions of the duplex link. *)
}

type t = {
  n : int;  (** Nodes are addressed [0 .. n-1]. *)
  edges : edge list;  (** Creation order; no self-loops, no duplicates. *)
}

val of_edges : n:int -> (int * int * Link.config) list -> t
(** Explicit construction.  Raises [Invalid_argument] on a self-loop,
    an out-of-range endpoint, or a duplicate edge (in either
    orientation). *)

val kary : fanout:int -> depth:int -> configs:Link.config array -> t
(** Complete [fanout]-ary tree of the given [depth] (depth 0 is a
    single root).  Node 0 is the root; node [i]'s children are
    [i*fanout + 1 .. i*fanout + fanout] in level order, so the tree has
    [(fanout^(depth+1) - 1) / (fanout - 1)] nodes and one edge per
    non-root node, listed in child-index order.  The edge into a
    depth-[d] node uses [configs.(min (d-1) (Array.length configs - 1))],
    i.e. one config per level with the last entry repeating.  Raises
    [Invalid_argument] if [fanout < 2], [depth < 0] or [configs] is
    empty. *)

val fat_tree : k:int -> configs:Link.config array -> t
(** Standard 3-layer fat-tree on even port count [k]: [k^2/4] core
    switches, [k] pods of [k/2] aggregation + [k/2] edge switches, and
    [k/2] hosts per edge switch — [k^2/4 + k^2 + k^3/4] nodes and
    [3k^3/4] edges.  [configs] is indexed by layer: [0] core-agg,
    [1] agg-edge, [2] edge-host (the last entry repeats if fewer are
    given).  Raises [Invalid_argument] if [k] is odd or [< 2], or
    [configs] is empty. *)

val random_graph : seed:int -> n:int -> extra:int -> configs:Link.config array -> t
(** Connected seeded random graph: a random spanning tree (node [i]
    attaches to a uniform earlier node) plus up to [extra] additional
    distinct non-self edges; each edge draws its config uniformly from
    [configs].  All randomness comes from a private [Sim.Rng] seeded
    with [seed], so the result is reproducible.  Raises
    [Invalid_argument] if [n < 1], [extra < 0] or [configs] is
    empty. *)

val node_count : t -> int
val edge_count : t -> int

val neighbors : t -> int list array
(** Adjacency lists in edge order (each edge contributes to both
    endpoints). *)

val degrees : t -> int array

val leaves : t -> int list
(** Degree-1 nodes, ascending. *)

val connected : t -> bool

val bfs_parents : t -> root:int -> int array
(** [parents.(root) = root]; unreachable nodes get [-1].  Neighbor
    visit order follows {!neighbors}, so the forest is deterministic. *)

val path_to_root : parents:int array -> int -> int list
(** [path_to_root ~parents v] is [v; parent v; ...; root].  Raises
    [Invalid_argument] if [v] is unreachable ([parents.(v) = -1]). *)

val tree_path : parents:int array -> int -> int -> int list
(** Unique tree path [a; ...; b] through the BFS forest (via the
    lowest common ancestor).  Raises [Invalid_argument] if either end
    is unreachable. *)
