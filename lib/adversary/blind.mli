(** Blind in-window injector (RFC 5961 threat model).

    An off-path attacker who knows a connection's 4-tuple (here: its
    flow id and endpoint address) but not its exact sequence state,
    and spoofs RST or data segments at guessed sequence numbers hoping
    to land in the receive window.  Injections originate at the
    attacker's own node [src], so they traverse (and load) real links.

    Stateless apart from counters; drive it from
    {!Faults.Injector} handlers ([Rst_inject] / [Data_inject] timeline
    events) so hostile runs stay deterministic and byte-identical
    across [--jobs]. *)

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  ?data_size:int ->
  unit ->
  t

val rst : t -> flow:Net.Packet.flow -> dst:Net.Packet.addr -> seq:int -> unit
(** Spoof a RST claiming sequence [seq] on [flow] towards [dst].
    Whether it kills, draws a challenge ack, or is dropped is decided
    by the victim {!Tcp.Receiver}'s RFC 5961 validation. *)

val data :
  t -> flow:Net.Packet.flow -> dst:Net.Packet.addr -> seq:int -> unit
(** Spoof a data segment at sequence [seq] (stamped with the current
    time, so a victim that acks it produces a sane-looking echo). *)

val rst_sent : t -> int

val data_sent : t -> int
