(** Non-backoff constant-rate sender (UDP-blast adversary).

    Sends TCP-framed data at a fixed packet rate on its own unicast
    flow and never reacts to anything: no acknowledgments are expected,
    drops are ignored, the rate never changes.  This is the classic
    unresponsive flow the paper's fairness bounds must survive.

    Fully deterministic: one self-rescheduling pace event, no RNG
    draws, no wall-clock reads. *)

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  dst:Net.Packet.addr ->
  ?rate:float ->
  ?data_size:int ->
  ?start_at:float ->
  unit ->
  t
(** Start blasting [rate] packets/s (default 1000) from [src] to [dst]
    beginning [start_at] seconds from now (default 0).  A counting sink
    is attached at [dst].  Raises [Invalid_argument] on a non-positive
    rate. *)

val flow : t -> Net.Packet.flow

val rate : t -> float
(** The configured (constant) send rate, packets/s. *)

val sent : t -> int

val delivered : t -> int
(** Packets that survived the bottleneck and reached the sink. *)

val reset_measurement : t -> unit
(** Restart the measurement window (the paper discards warmup). *)

val send_rate : t -> float
(** Packets/s put on the wire since the last {!reset_measurement}. *)

val delivered_rate : t -> float
(** Packets/s delivered to the sink since the last
    {!reset_measurement} — the bandwidth the adversary actually
    captured at the bottleneck. *)

val stop : t -> unit
(** Cease sending at the next pace tick; idempotent. *)
