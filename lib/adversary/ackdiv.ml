type params = {
  split : int;
  init_cwnd : float;
  max_cwnd : float;
  max_burst : int;
  data_size : int;
  min_rto : float;
}

let default_params =
  {
    split = 4;
    init_cwnd = 1.0;
    max_cwnd = 128.0;
    max_burst = 4;
    data_size = Tcp.Wire.data_size;
    min_rto = 1.0;
  }

type t = {
  net : Net.Network.t;
  params : params;
  flow : Net.Packet.flow;
  src : Net.Packet.addr;
  dst : Net.Packet.addr;
  rto : Tcp.Rto.t;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable next_seq : int;
  mutable high_ack : int;
  mutable expected : int;  (* colluding receiver's in-order point *)
  mutable sent : int;
  mutable acks_received : int;
  mutable acks_sent : int;
  mutable timeouts : int;
  mutable stopped : bool;
  mutable timer : Sim.Scheduler.event_id option;
  mutable timeout_thunk : unit -> unit;
  mutable meas_time : float;
  mutable meas_sent : int;
  mutable meas_delivered : int;
}

let flow t = t.flow

let cwnd t = t.cwnd

let delivered t = t.high_ack

let sent t = t.sent

let acks_received t = t.acks_received

let acks_sent t = t.acks_sent

let timeouts t = t.timeouts

let now t = Net.Network.now t.net

let reset_measurement t =
  t.meas_time <- now t;
  t.meas_sent <- t.sent;
  t.meas_delivered <- t.high_ack

let span t = now t -. t.meas_time

let send_rate t =
  let dt = span t in
  if dt <= 0.0 then 0.0 else float_of_int (t.sent - t.meas_sent) /. dt

let delivered_rate t =
  let dt = span t in
  if dt <= 0.0 then 0.0
  else float_of_int (t.high_ack - t.meas_delivered) /. dt

let sched t = Net.Network.scheduler t.net

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some id ->
      Sim.Scheduler.cancel (sched t) id;
      t.timer <- None

let arm_timer t =
  cancel_timer t;
  t.timer <-
    Some
      (Sim.Scheduler.schedule_after (sched t) (Tcp.Rto.timeout t.rto)
         t.timeout_thunk)

let send_data t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sent <- t.sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
      ~dst:(Net.Packet.Unicast t.dst) ~size:t.params.data_size
      ~payload:(Tcp.Wire.Tcp_data { seq; sent_at = now t })
  in
  Net.Network.send t.net pkt

let try_send t =
  if not t.stopped then begin
    let burst = ref 0 in
    while
      !burst < t.params.max_burst
      && t.next_seq - t.high_ack < int_of_float t.cwnd
    do
      send_data t;
      incr burst
    done;
    if t.next_seq > t.high_ack then arm_timer t
  end

(* Growth per ack ARRIVAL, not per packet newly acknowledged: the
   pre-ABC (RFC 3465) bug ack division exploits.  The colluding
   receiver below sends [split] acks per data packet, so this sender's
   window grows [split] times faster than an honest one. *)
let grow_cwnd t =
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
  else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd);
  if t.cwnd > t.params.max_cwnd then t.cwnd <- t.params.max_cwnd

let on_ack t ~cum_ack ~echo =
  if not t.stopped then begin
    t.acks_received <- t.acks_received + 1;
    grow_cwnd t;
    if cum_ack > t.high_ack then begin
      t.high_ack <- cum_ack;
      if echo >= 0.0 then Tcp.Rto.sample t.rto (now t -. echo);
      if t.next_seq > t.high_ack then arm_timer t else cancel_timer t
    end;
    try_send t
  end

let on_timeout t =
  t.timer <- None;
  if (not t.stopped) && t.next_seq > t.high_ack then begin
    t.timeouts <- t.timeouts + 1;
    t.ssthresh <- Stdlib.max 2.0 (t.cwnd /. 2.0);
    t.cwnd <- 1.0;
    (* Go-back-N: rewind and resend from the last cumulative point. *)
    t.next_seq <- t.high_ack;
    Tcp.Rto.backoff t.rto;
    try_send t
  end

let stop t =
  t.stopped <- true;
  cancel_timer t

(* Colluding receiver: acknowledge every data arrival [split] times.
   Go-back-N delivery — out-of-order data only produces (split)
   duplicate acks at the current in-order point. *)
let on_data t ~seq ~sent_at =
  if seq = t.expected then t.expected <- t.expected + 1;
  for _ = 1 to t.params.split do
    t.acks_sent <- t.acks_sent + 1;
    let pkt =
      Net.Network.make_packet t.net ~flow:t.flow ~src:t.dst
        ~dst:(Net.Packet.Unicast t.src) ~size:Tcp.Wire.ack_size
        ~payload:
          (Tcp.Wire.Tcp_ack
             {
               cum_ack = t.expected;
               blocks = [];
               echo = sent_at;
               ece = false;
               rwnd = Tcp.Wire.no_rwnd;
             })
    in
    Net.Network.send t.net pkt
  done

let create ~net ~src ~dst ?(params = default_params) ?(start_at = 0.0) () =
  if params.split < 1 then invalid_arg "Ackdiv.create: split < 1";
  let flow = Net.Network.fresh_flow net in
  let t =
    {
      net;
      params;
      flow;
      src;
      dst;
      rto = Tcp.Rto.create ~min_rto:params.min_rto ();
      cwnd = params.init_cwnd;
      ssthresh = params.max_cwnd;
      next_seq = 0;
      high_ack = 0;
      expected = 0;
      sent = 0;
      acks_received = 0;
      acks_sent = 0;
      timeouts = 0;
      stopped = false;
      timer = None;
      timeout_thunk = (fun () -> ());
      meas_time = Net.Network.now net;
      meas_sent = 0;
      meas_delivered = 0;
    }
  in
  t.timeout_thunk <- (fun () -> on_timeout t);
  Net.Node.attach (Net.Network.node net src) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Tcp.Wire.Tcp_ack { cum_ack; echo; _ } -> on_ack t ~cum_ack ~echo
      | _ -> ());
  Net.Node.attach (Net.Network.node net dst) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Tcp.Wire.Tcp_data { seq; sent_at } -> on_data t ~seq ~sent_at
      | _ -> ());
  ignore
    (Sim.Scheduler.schedule_after (Net.Network.scheduler net) start_at
       (fun () -> try_send t));
  t
