type t = {
  net : Net.Network.t;
  src : Net.Packet.addr;
  data_size : int;
  mutable rst_sent : int;
  mutable data_sent : int;
}

let rst_sent t = t.rst_sent

let data_sent t = t.data_sent

let create ~net ~src ?(data_size = Tcp.Wire.data_size) () =
  { net; src; data_size; rst_sent = 0; data_sent = 0 }

let rst t ~flow ~dst ~seq =
  t.rst_sent <- t.rst_sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow ~src:t.src
      ~dst:(Net.Packet.Unicast dst) ~size:Tcp.Wire.ack_size
      ~payload:(Tcp.Wire.Tcp_rst { seq })
  in
  Net.Network.send t.net pkt

let data t ~flow ~dst ~seq =
  t.data_sent <- t.data_sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow ~src:t.src
      ~dst:(Net.Packet.Unicast dst) ~size:t.data_size
      ~payload:
        (Tcp.Wire.Tcp_data { seq; sent_at = Net.Network.now t.net })
  in
  Net.Network.send t.net pkt
