(** Ack-division attacker (Savage et al., CCR 1999).

    A colluding sender/receiver pair on one flow: the receiver
    acknowledges every data packet [split] times, and the sender —
    modelling the pre-ABC (RFC 3465) congestion-control bug — grows
    its window per ack {e arrival} rather than per packet newly
    acknowledged, so it opens [split] times faster than an honest TCP
    through the same bottleneck.

    The honest {!Tcp.Sender} counts cumulatively-acknowledged packets
    (appropriate-byte-counting at packet granularity) and is therefore
    structurally immune; this module exists to measure what the
    misbehaving variant extracts from the shared queue.  Recovery is
    deliberately primitive — timeout-only go-back-N with
    {!Tcp.Rto} backoff — because the attack is about growth, not loss
    recovery.  Fully deterministic: no RNG draws. *)

type params = {
  split : int;  (** Acks sent per data packet (>= 1; honest = 1). *)
  init_cwnd : float;
  max_cwnd : float;
  max_burst : int;
  data_size : int;
  min_rto : float;
}

val default_params : params
(** split 4, cwnd 1, max_cwnd 128, max_burst 4, 1000-byte packets,
    min RTO 1 s — comparable to {!Tcp.Sender.default_params}. *)

type t

val create :
  net:Net.Network.t ->
  src:Net.Packet.addr ->
  dst:Net.Packet.addr ->
  ?params:params ->
  ?start_at:float ->
  unit ->
  t
(** Build the colluding pair on a fresh flow; transmission starts
    [start_at] seconds from now.  Raises [Invalid_argument] if
    [params.split < 1]. *)

val flow : t -> Net.Packet.flow

val cwnd : t -> float

val sent : t -> int

val delivered : t -> int
(** Packets cumulatively acknowledged (go-back-N in-order point). *)

val acks_received : t -> int

val acks_sent : t -> int
(** Total acks the colluding receiver emitted ([split] per data). *)

val timeouts : t -> int

val reset_measurement : t -> unit

val send_rate : t -> float
(** Packets/s on the wire since the last {!reset_measurement}. *)

val delivered_rate : t -> float
(** Goodput packets/s since the last {!reset_measurement}. *)

val stop : t -> unit
(** Cancel the retransmission timer and cease sending; idempotent. *)
