type t = {
  net : Net.Network.t;
  node : Net.Packet.addr;
  flow : Net.Packet.flow;
  peer : Net.Packet.addr;
  lookahead : int;
  mutable max_seen : int;
  mutable received : int;
  mutable acks_sent : int;
}

let acks_sent t = t.acks_sent

let received t = t.received

let claimed t = t.max_seen + t.lookahead

let send_ack t ~echo =
  t.acks_sent <- t.acks_sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.node
      ~dst:(Net.Packet.Unicast t.peer) ~size:Tcp.Wire.ack_size
      ~payload:
        (Tcp.Wire.Tcp_ack
           {
             cum_ack = claimed t;
             blocks = [];
             echo;
             ece = false;
             rwnd = Tcp.Wire.no_rwnd;
           })
  in
  Net.Network.send t.net pkt

let on_data t ~seq ~sent_at =
  t.received <- t.received + 1;
  if seq + 1 > t.max_seen then t.max_seen <- seq + 1;
  send_ack t ~echo:sent_at

let hijack ~net ~node ~flow ~peer ?(lookahead = 0) () =
  if lookahead < 0 then invalid_arg "Optack.hijack: negative lookahead";
  let t =
    {
      net;
      node;
      flow;
      peer;
      lookahead;
      max_seen = 0;
      received = 0;
      acks_sent = 0;
    }
  in
  (* Replaces whatever honest receiver was attached for this flow. *)
  Net.Node.attach (Net.Network.node net node) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Tcp.Wire.Tcp_data { seq; sent_at } -> on_data t ~seq ~sent_at
      | Tcp.Wire.Tcp_probe { seq = _; sent_at } -> send_ack t ~echo:sent_at
      | _ -> ());
  t
