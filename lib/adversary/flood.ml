type t = {
  net : Net.Network.t;
  flow : Net.Packet.flow;
  src : Net.Packet.addr;
  dst : Net.Packet.addr;
  data_size : int;
  rate : float;
  mutable next_seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable stopped : bool;
  mutable meas_time : float;
  mutable meas_sent : int;
  mutable meas_delivered : int;
}

let flow t = t.flow

let rate t = t.rate

let sent t = t.sent

let delivered t = t.delivered

let now t = Net.Network.now t.net

let stop t = t.stopped <- true

let reset_measurement t =
  t.meas_time <- now t;
  t.meas_sent <- t.sent;
  t.meas_delivered <- t.delivered

let span t = now t -. t.meas_time

let send_rate t =
  let dt = span t in
  if dt <= 0.0 then 0.0 else float_of_int (t.sent - t.meas_sent) /. dt

let delivered_rate t =
  let dt = span t in
  if dt <= 0.0 then 0.0 else float_of_int (t.delivered - t.meas_delivered) /. dt

let send_data t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.sent <- t.sent + 1;
  let pkt =
    Net.Network.make_packet t.net ~flow:t.flow ~src:t.src
      ~dst:(Net.Packet.Unicast t.dst) ~size:t.data_size
      ~payload:(Tcp.Wire.Tcp_data { seq; sent_at = now t })
  in
  Net.Network.send t.net pkt

let create ~net ~src ~dst ?(rate = 1000.0) ?(data_size = Tcp.Wire.data_size)
    ?(start_at = 0.0) () =
  if rate <= 0.0 then invalid_arg "Flood.create: non-positive rate";
  let flow = Net.Network.fresh_flow net in
  let t =
    {
      net;
      flow;
      src;
      dst;
      data_size;
      rate;
      next_seq = 0;
      sent = 0;
      delivered = 0;
      stopped = false;
      meas_time = Net.Network.now net;
      meas_sent = 0;
      meas_delivered = 0;
    }
  in
  (* Sink: count arrivals, never acknowledge, never slow down. *)
  Net.Node.attach (Net.Network.node net dst) ~flow (fun pkt ->
      match pkt.Net.Packet.payload with
      | Tcp.Wire.Tcp_data _ -> t.delivered <- t.delivered + 1
      | _ -> ());
  let sched = Net.Network.scheduler net in
  let rec pace () =
    if not t.stopped then begin
      send_data t;
      ignore (Sim.Scheduler.schedule_after sched (1.0 /. t.rate) pace)
    end
  in
  ignore (Sim.Scheduler.schedule_after sched start_at pace);
  t
