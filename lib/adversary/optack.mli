(** Optimistic acker (Savage et al., CCR 1999).

    Hijacks the receiving end of an honest {!Tcp.Sender} flow:
    {!hijack} re-attaches the flow's endpoint handler at the receiving
    node, replacing the honest SACK receiver with one that
    cumulatively acknowledges [max_seen + 1 + lookahead] on every data
    arrival.  With [lookahead = 0] every gap below the highest
    sequence seen is acknowledged, so losses become invisible to the
    sender — no dup acks, no SACK holes, no retransmissions — and its
    window climbs to the cap regardless of congestion.

    A positive [lookahead] acknowledges data the sender has not yet
    transmitted; the hardened sender's ack-validation fast path
    ({!Tcp.Sender.ack_in_window}) drops those acks and counts them in
    {!Tcp.Sender.ghost_acks} — the mitigation the suite measures.
    Concealing genuine losses ([lookahead = 0]) is {e not} detectable
    that way, which is exactly the attack's point. *)

type t

val hijack :
  net:Net.Network.t ->
  node:Net.Packet.addr ->
  flow:Net.Packet.flow ->
  peer:Net.Packet.addr ->
  ?lookahead:int ->
  unit ->
  t
(** Replace the endpoint handler for [flow] at [node], acking to
    [peer].  Call after the honest pair is built.  Raises
    [Invalid_argument] on a negative [lookahead]. *)

val received : t -> int
(** Data packets that actually arrived. *)

val acks_sent : t -> int

val claimed : t -> int
(** The cumulative sequence currently being claimed. *)
