(** Comparability model of the perf-trend gate.

    `make bench-trend` compares the checked-in BENCH_perf.json /
    BENCH_scale.json against a history of earlier runs, but a history
    line is only a valid baseline when it measured the same thing:
    same scenario duration and seed, and — for documents that record a
    ["cores"] field (parallel-speedup numbers do) — the same machine
    core count.  This module owns the document shape and the decision,
    so the bench gate and the unit suite agree on exactly when (and
    why) a line is skipped. *)

type doc = {
  duration : float;  (** The document's ["duration_s"] field. *)
  seed : float;
  cores : int option;
      (** ["cores"] when recorded; [None] means the numbers do not
          depend on the machine's parallelism and gate everywhere. *)
  scenarios : (string * float) list;  (** (name, events per second). *)
}

val doc_of_json : Json.t -> (doc, string) result
(** Parse one benchmark document; [Error] names the missing or
    malformed field. *)

type classification =
  | Comparable
  | Skip_cores of { recorded : int; machine : int }
      (** The line pins a core count and this machine differs:
          parallel-speedup numbers from another machine are noise, not
          a baseline. *)
  | Skip_params
      (** Duration or seed differ from the current document. *)

val classify : current:doc -> machine_cores:int -> doc -> classification
(** How a history line relates to the current document on a
    [machine_cores]-core machine.  The cores check wins over the
    parameter check, so a foreign-machine line is reported as such
    even when its parameters also differ. *)

val skip_reason : classification -> string option
(** Human-readable reason a line is excluded; [None] for
    [Comparable].  The [Skip_cores] text names both core counts — the
    bench gate prints it verbatim and the unit suite asserts it. *)
