(** One unit of sweep work: a closure that builds and runs a
    self-contained simulation.

    A job must be fully independent — it creates its own
    {!Net.Network.t} (with its own seed / RNG streams) inside the
    closure and shares no mutable state with other jobs, so the pool
    can execute it on any domain.  The per-network {!Sim.Rng.split}
    design guarantees the same closure produces bit-identical results
    regardless of which domain runs it. *)

type 'a t

val create : label:string -> (unit -> Net.Network.t * 'a) -> 'a t
(** [create ~label f] wraps a closure that builds and runs one
    simulation, returning the finished network (for the events-fired
    metric) together with the caller's result. *)

val pure : label:string -> (unit -> 'a) -> 'a t
(** A job with no network (e.g. an analytic model run); its
    events-fired metric is 0. *)

val label : 'a t -> string

val run : 'a t -> Net.Network.t option * 'a
(** Execute the job's closure (used by {!Pool}). *)
