type doc = {
  duration : float;
  seed : float;
  cores : int option;
  scenarios : (string * float) list;
}

let doc_of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let num field j =
    match Option.bind (Json.member field j) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing numeric %S field" field)
  in
  let* duration = num "duration_s" json in
  let* seed = num "seed" json in
  let cores = Option.bind (Json.member "cores" json) Json.to_int_opt in
  let* scenarios =
    match Json.member "scenarios" json with
    | Some (Json.List rows) ->
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            match Option.bind (Json.member "name" row) Json.to_string_opt with
            | None -> Error "scenario row without a name"
            | Some name ->
                let* eps = num "events_per_s" row in
                Ok ((name, eps) :: acc))
          (Ok []) rows
        |> Result.map List.rev
    | _ -> Error "missing \"scenarios\" list"
  in
  Ok { duration; seed; cores; scenarios }

type classification =
  | Comparable
  | Skip_cores of { recorded : int; machine : int }
  | Skip_params

let classify ~current ~machine_cores line =
  match line.cores with
  | Some recorded when recorded <> machine_cores ->
      Skip_cores { recorded; machine = machine_cores }
  | _ ->
      if line.duration = current.duration && line.seed = current.seed then
        Comparable
      else Skip_params

let skip_reason = function
  | Comparable -> None
  | Skip_cores { recorded; machine } ->
      Some
        (Printf.sprintf
           "recorded on a %d-core machine, this one has %d" recorded machine)
  | Skip_params -> Some "duration/seed differ from the current document"
