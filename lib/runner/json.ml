type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Verbatim of string

(* Shortest decimal representation that parses back to the same float. *)
let float_repr f =
  if not (Float.is_finite f) then None
  else if Float.is_integer f && Float.abs f < 1e15 then
    Some (Printf.sprintf "%.1f" f)
  else
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    Some (go 1)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Verbatim s -> Buffer.add_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
