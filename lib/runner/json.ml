type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Verbatim of string

(* Shortest decimal representation that parses back to the same float. *)
let float_repr f =
  if not (Float.is_finite f) then None
  else if Float.is_integer f && Float.abs f < 1e15 then
    Some (Printf.sprintf "%.1f" f)
  else
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    Some (go 1)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Verbatim s -> Buffer.add_string buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- parsing --------------------------------------------------------

   A recursive-descent parser for the subset this library emits (plus
   standard JSON escapes), so tooling like the bench-trend gate can
   read its own history files back without an external dependency.
   Numbers with a '.', exponent, or out-of-int range parse as [Float],
   everything else as [Int]; [Verbatim] never comes back (it re-parses
   as its structure). *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then
      parse_error !pos (Printf.sprintf "expected %C" c);
    advance ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then parse_error !pos "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then parse_error !pos "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> parse_error !pos "bad \\u escape"
                in
                (* Code points below 0x80 map to one byte; everything
                   else is re-encoded as UTF-8. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end;
                pos := !pos + 4
            | c -> parse_error !pos (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    let is_floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) raw
    in
    if is_floaty then
      match float_of_string_opt raw with
      | Some f -> Float f
      | None -> parse_error start (Printf.sprintf "bad number %S" raw)
    else
      match int_of_string_opt raw with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt raw with
          | Some f -> Float f
          | None -> parse_error start (Printf.sprintf "bad number %S" raw))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing characters";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
