(** Minimal JSON document builder (no external dependency).

    Floats are printed with the shortest decimal representation that
    round-trips, so two runs producing bit-identical numbers produce
    byte-identical JSON; non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Verbatim of string
      (** A pre-serialized JSON fragment, emitted as-is.  Lets a
          resumable sweep splice rows persisted by an earlier process
          into a new document byte-exactly. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
