(** Minimal JSON document builder (no external dependency).

    Floats are printed with the shortest decimal representation that
    round-trips, so two runs producing bit-identical numbers produce
    byte-identical JSON; non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Verbatim of string
      (** A pre-serialized JSON fragment, emitted as-is.  Lets a
          resumable sweep splice rows persisted by an earlier process
          into a new document byte-exactly. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Parsing}

    Recursive-descent reader for the documents this module emits (and
    standard JSON generally), so tooling — e.g. the bench-trend gate —
    can read its own output back without an external dependency. *)

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON document; raises {!Parse_error} on malformed input
    or trailing characters.  Numbers with a fraction or exponent come
    back as [Float], others as [Int]; [Verbatim] is never produced. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Float] or [Int] as a float. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option
