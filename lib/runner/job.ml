type 'a t = { label : string; body : unit -> Net.Network.t option * 'a }

let create ~label f =
  {
    label;
    body =
      (fun () ->
        let net, v = f () in
        (Some net, v));
  }

let pure ~label f = { label; body = (fun () -> (None, f ())) }

let label t = t.label

let run t = t.body ()
