(** Per-job execution metrics collected by {!Pool}. *)

type t = {
  wall_s : float;  (** Wall-clock seconds spent inside the job body. *)
  events_fired : int;
      (** Scheduler events executed by the job's network (0 for
          {!Job.pure} jobs). *)
  allocated_mb : float;
      (** MB allocated by the domain while running the job. *)
  peak_heap_mb : float;
      (** Top-of-heap high-water mark when the job finished
          (approximate: the major heap is shared between domains). *)
}

val zero : t

val pp : Format.formatter -> t -> unit
