let run_json payload (o : _ Pool.outcome) =
  let m = o.Pool.metrics in
  Json.Obj
    ([
       ("label", Json.String o.Pool.label);
       ("wall_s", Json.Float m.Metrics.wall_s);
       ("events_fired", Json.Int m.Metrics.events_fired);
       ("allocated_mb", Json.Float m.Metrics.allocated_mb);
       ("peak_heap_mb", Json.Float m.Metrics.peak_heap_mb);
     ]
    @ payload o)

let run_row_json = run_json

let sweep_json_of_rows ~name ~jobs ~wall_s ?(extra = []) rows =
  Json.Obj
    ([
       ("name", Json.String name);
       ("jobs", Json.Int jobs);
       ("runs_total", Json.Int (List.length rows));
       ("wall_s", Json.Float wall_s);
       ("runs", Json.List rows);
     ]
    @ extra)

let sweep_json ~name ~jobs ~wall_s ?extra payload outcomes =
  sweep_json_of_rows ~name ~jobs ~wall_s ?extra
    (List.map (run_json payload) outcomes)

let write_file ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

(* --- observability exports ------------------------------------------ *)

let series_json s =
  Json.Obj
    [
      ("name", Json.String (Obs.Series.name s));
      ("samples", Json.Int (Obs.Series.length s));
      ("offered", Json.Int (Obs.Series.offered s));
      ("stride", Json.Int (Obs.Series.stride s));
      ( "times",
        Json.List
          (Array.to_list (Array.map (fun x -> Json.Float x) (Obs.Series.times s)))
      );
      ( "values",
        Json.List
          (Array.to_list
             (Array.map (fun x -> Json.Float x) (Obs.Series.values s))) );
    ]

let registry_json reg =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, c) -> (n, Json.Int c)) (Obs.Registry.counters reg))
      );
      ( "gauges",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) (Obs.Registry.gauges reg))
      );
      ("series", Json.List (List.map series_json (Obs.Registry.all_series reg)));
    ]

let series_csv ppf series_list =
  Format.fprintf ppf "series,time,value@.";
  List.iter
    (fun s ->
      let name = Obs.Series.name s in
      Obs.Series.iter s ~f:(fun ~time v ->
          Format.fprintf ppf "%s,%.6f,%.6f@." name time v))
    series_list

(* Per-flow trace export: every series named "<flow>.cwnd" is joined
   with its "<flow>.bytes_acked" sibling.  The two series are sampled
   at the same call points with the same decimation limit, so their
   sample times coincide (see [Obs.Series]); zipping by index is exact.
   Flows appear in registry creation order and samples in time order,
   both deterministic, so the same seed yields byte-identical output. *)
let flow_series_csv ppf reg =
  Format.fprintf ppf "time,flow,cwnd,bytes_acked@.";
  List.iter
    (fun s ->
      let name = Obs.Series.name s in
      match Filename.check_suffix name ".cwnd" with
      | false -> ()
      | true -> (
          let flow = Filename.chop_suffix name ".cwnd" in
          match Obs.Registry.find_series reg (flow ^ ".bytes_acked") with
          | None -> ()
          | Some bytes ->
              let ts = Obs.Series.times s
              and cwnds = Obs.Series.values s
              and bs = Obs.Series.values bytes in
              let n = Stdlib.min (Array.length ts) (Array.length bs) in
              for i = 0 to n - 1 do
                Format.fprintf ppf "%.6f,%s,%.6f,%.0f@." ts.(i) flow cwnds.(i)
                  bs.(i)
              done))
    (Obs.Registry.all_series reg)

let pp_metrics_table ppf outcomes =
  Format.fprintf ppf "%-24s %10s %14s %12s@." "job" "wall (s)" "events"
    "alloc (MB)";
  List.iter
    (fun (o : _ Pool.outcome) ->
      let m = o.Pool.metrics in
      Format.fprintf ppf "%-24s %10.3f %14d %12.1f@." o.Pool.label
        m.Metrics.wall_s m.Metrics.events_fired m.Metrics.allocated_mb)
    outcomes
