(** Structured export of a sweep's outcomes: a [BENCH_sweep.json]-style
    document with per-job timing, events-fired and memory metrics, plus
    caller-supplied payload fields (fairness numbers, case ids, ...).

    Schema:
    {[
      {
        "name": "<sweep name>",
        "jobs": <domain count>,
        "runs_total": <job count>,
        "wall_s": <whole-sweep wall clock>,
        "runs": [
          {
            "label": "<job label>",
            "wall_s": <per-job wall clock>,
            "events_fired": <scheduler events>,
            "allocated_mb": <MB allocated>,
            "peak_heap_mb": <heap high-water mark>,
            ...payload fields...
          }, ...
        ],
        ...extra fields...
      }
    ]} *)

val sweep_json :
  name:string ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * Json.t) list ->
  ('a Pool.outcome -> (string * Json.t) list) ->
  'a Pool.outcome list ->
  Json.t
(** [sweep_json ~name ~jobs ~wall_s payload outcomes] builds the
    document above; [payload] contributes per-run fields appended after
    the metrics. *)

val run_row_json :
  ('a Pool.outcome -> (string * Json.t) list) -> 'a Pool.outcome -> Json.t
(** One entry of the ["runs"] array (label, metrics, payload fields).
    Exposed so resumable sweeps can persist finished rows and splice
    them into a later {!sweep_json_of_rows} call. *)

val sweep_json_of_rows :
  name:string ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * Json.t) list ->
  Json.t list ->
  Json.t
(** {!sweep_json} over pre-built rows (see {!run_row_json}); rows are
    emitted in the given order. *)

val write_file : path:string -> Json.t -> unit
(** Write the document to [path] followed by a newline. *)

val pp_metrics_table :
  Format.formatter -> 'a Pool.outcome list -> unit
(** Human-readable per-job metrics table (label, wall s, events,
    allocation). *)

(** {2 Observability exports} *)

val registry_json : Obs.Registry.t -> Json.t
(** Full registry dump: [{"counters": {...}, "gauges": {...},
    "series": [{"name", "samples", "offered", "stride", "times",
    "values"}, ...]}].  Enumeration order is creation order, so the
    same seed yields byte-identical documents. *)

val series_csv : Format.formatter -> Obs.Series.t list -> unit
(** Long-form CSV: one [series,time,value] row per stored sample. *)

val flow_series_csv : Format.formatter -> Obs.Registry.t -> unit
(** Figure-7/8/9-style per-flow trace: a [time,flow,cwnd,bytes_acked]
    row for every stored sample of every ["<flow>.cwnd"] series that
    has a ["<flow>.bytes_acked"] sibling (TCP and RLA flow probes
    guarantee the pair is sampled at identical times).  Rows are
    grouped by flow in creation order, time-ascending within a flow;
    deterministic for a fixed seed. *)
