(** Fixed-size domain pool executing {!Job.t}s in parallel.

    Jobs are pulled from a shared queue by [jobs] OCaml 5 domains;
    results are returned in deterministic submission order regardless
    of execution interleaving.  Because every job is self-contained
    (own network, own RNG streams), the values are bit-identical for
    any [jobs] count — only wall-clock changes. *)

exception Job_failed of string * exn
(** Raised by {!run} (after all domains have joined) when a job's
    closure raised; carries the job label and the original
    exception.  Jobs submitted earlier take precedence. *)

type 'a outcome = {
  label : string;
  value : 'a;
  metrics : Metrics.t;
}

val default_jobs : unit -> int
(** [recommended_domain_count], clamped to [1, 8]. *)

val run : ?jobs:int -> 'a Job.t list -> 'a outcome list
(** [run ~jobs js] executes every job and returns one outcome per job,
    in submission order.  [jobs] defaults to {!default_jobs}; values
    below 1 mean 1 (fully sequential, in the calling domain). *)

val values : 'a outcome list -> 'a list
(** Project the job results, dropping labels and metrics. *)
