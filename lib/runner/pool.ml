(* lint: allow-file wall-clock -- wall_s is a perf measurement of the host,
   never simulation state; it feeds only the clearly-labelled bench metrics *)
exception Job_failed of string * exn

type 'a outcome = { label : string; value : 'a; metrics : Metrics.t }

let default_jobs () =
  Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let bytes_per_word = float_of_int (Sys.word_size / 8)

let mb = 1024.0 *. 1024.0

let run_one job =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let net, value = Job.run job in
  let wall_s = Unix.gettimeofday () -. t0 in
  let allocated_mb = (Gc.allocated_bytes () -. a0) /. mb in
  let peak_heap_mb =
    float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. bytes_per_word /. mb
  in
  let events_fired =
    match net with
    | None -> 0
    | Some n -> Sim.Scheduler.events_fired (Net.Network.scheduler n)
  in
  {
    label = Job.label job;
    value;
    metrics = { Metrics.wall_s; events_fired; allocated_mb; peak_heap_mb };
  }

let run ?jobs job_list =
  let jobs =
    match jobs with None -> default_jobs () | Some j -> Stdlib.max 1 j
  in
  let arr = Array.of_list job_list in
  let n = Array.length arr in
  (* Slots are written at distinct indices by at most one domain each;
     Domain.join publishes them to the submitter. *)
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      let job = arr.(i) in
      out.(i) <-
        Some
          (try Ok (run_one job) with e -> Error (Job_failed (Job.label job, e)));
      worker ()
    end
  in
  let n_domains = Stdlib.min jobs (Stdlib.max 1 n) in
  if n_domains <= 1 then worker ()
  else begin
    let helpers = List.init (n_domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end;
  Array.to_list
    (Array.map
       (function
         | Some (Ok o) -> o
         | Some (Error e) -> raise e
         | None -> assert false)
       out)

let values outcomes = List.map (fun o -> o.value) outcomes
