(* lint: allow-file wall-clock -- benchmark harness: host wall time IS
   the measurement here, not simulation state *)
(* Performance bench: wall-clock, event throughput and peak heap for
   the paper's main scenarios, plus checkpoint write/restore latency,
   emitted as BENCH_perf.json (see `make bench-perf`).

   Durations scale like bench/main.exe: RLA_BENCH_DURATION (seconds)
   overrides the 150 s default.  Wall-clock columns are host
   measurements and vary across machines; the events_fired column is
   deterministic for a given duration/seed. *)

let duration =
  match Sys.getenv_opt "RLA_BENCH_DURATION" with
  | None -> 150.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ ->
          Printf.eprintf
            "rla-bench-perf: RLA_BENCH_DURATION=%S is not a positive \
             duration; falling back to 150 s\n\
             %!"
            s;
          150.0)

let warmup = if 100.0 < duration then 100.0 else 0.4 *. duration
let seed = 1

let config ~gateway ~case_index =
  let case = Experiments.Tree.case_of_index case_index in
  {
    (Experiments.Sharing.default_config ~gateway ~case) with
    duration;
    warmup;
    seed;
  }

let scenarios =
  List.map
    (fun i -> (Printf.sprintf "droptail/case%d" i, Experiments.Scenario.Droptail, i))
    [ 1; 2; 3; 4; 5 ]
  @ [ ("red/case3", Experiments.Scenario.Red, 3) ]

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Checkpoint latency: capture the session mid-run (the largest state —
   every flow active, queue occupied), then restore it from disk.  The
   bare [run_until] skips the warm-up measurement reset, which is fine:
   only the save/load cost is measured, not fairness numbers. *)
let checkpoint_latency cfg =
  let session = Experiments.Sharing.setup cfg in
  let sched = Net.Network.scheduler session.Experiments.Sharing.net in
  Sim.Scheduler.run_until sched (cfg.Experiments.Sharing.duration /. 2.0);
  let path = Filename.temp_file "rla_bench" ".ckpt" in
  let (), save_s =
    time (fun () ->
        Ckpt.Sharing_ckpt.save ~path ~time:(Sim.Scheduler.now sched)
          ~config:cfg ~session ())
  in
  let bytes = (Unix.stat path).Unix.st_size in
  let loaded, load_s = time (fun () -> Ckpt.Sharing_ckpt.load ~path) in
  (match loaded with
  | Ok _ -> ()
  | Error e ->
      Sys.remove path;
      failwith
        ("bench checkpoint failed to restore: "
        ^ Ckpt.Sharing_ckpt.error_to_string e));
  Sys.remove path;
  (save_s, load_s, bytes)

let run_scenario (name, gateway, case_index) =
  let cfg = config ~gateway ~case_index in
  let (net, _result), wall_s =
    time (fun () -> Experiments.Sharing.run_with_net cfg)
  in
  let events = Sim.Scheduler.events_fired (Net.Network.scheduler net) in
  let peak_heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
  let save_s, load_s, ckpt_bytes = checkpoint_latency cfg in
  Printf.printf
    "%-16s %8.2fs wall  %9d events  %10.0f ev/s  ckpt save %6.1f ms / load \
     %6.1f ms / %d bytes\n\
     %!"
    name wall_s events
    (float_of_int events /. wall_s)
    (save_s *. 1000.0) (load_s *. 1000.0) ckpt_bytes;
  Runner.Json.Obj
    [
      ("name", Runner.Json.String name);
      ("wall_s", Runner.Json.Float wall_s);
      ("events_fired", Runner.Json.Int events);
      ("events_per_s", Runner.Json.Float (float_of_int events /. wall_s));
      ("peak_heap_words", Runner.Json.Int peak_heap_words);
      ("ckpt_save_s", Runner.Json.Float save_s);
      ("ckpt_load_s", Runner.Json.Float load_s);
      ("ckpt_bytes", Runner.Json.Int ckpt_bytes);
    ]

let () =
  let json_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_perf.json"
  in
  let rows = List.map run_scenario scenarios in
  let doc =
    Runner.Json.Obj
      [
        ("bench", Runner.Json.String "perf");
        ("duration_s", Runner.Json.Float duration);
        ("warmup_s", Runner.Json.Float warmup);
        ("seed", Runner.Json.Int seed);
        ("scenarios", Runner.Json.List rows);
      ]
  in
  let oc = open_out json_path in
  output_string oc (Runner.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  (* Append-only trend history: every run adds one line (the same
     document plus a wall-clock stamp) to <name>_history.jsonl next to
     the JSON; `make bench-trend` gates regressions against the best
     line whose duration/seed match.  Lines are never rewritten, so the
     file is a permanent record of this machine's runs. *)
  let history_path = Filename.remove_extension json_path ^ "_history.jsonl" in
  let line =
    Runner.Json.Obj
      [
        ("recorded_at", Runner.Json.Float (Unix.gettimeofday ()));
        ("bench", Runner.Json.String "perf");
        ("duration_s", Runner.Json.Float duration);
        ("warmup_s", Runner.Json.Float warmup);
        ("seed", Runner.Json.Int seed);
        ("scenarios", Runner.Json.List rows);
      ]
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 history_path
  in
  output_string oc (Runner.Json.to_string line);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended %s\n%!" history_path
