(* lint: allow-file wall-clock -- benchmark harness: host wall time IS
   the measurement here, not simulation state *)
(* Sharding bench: events/s and speedup curves for the 10k-receiver
   sharded RLA scenario (Experiments.Scaling.run_sharded) at
   increasing worker-domain counts, emitted as BENCH_scale.json plus
   one append-only line in BENCH_scale_history.jsonl — same shape and
   trend gate as BENCH_perf (`make bench-scale`, `make bench-trend`).

   The shard structure is fixed by the topology partition, so every
   row simulates the identical event sequence; the bench asserts that
   by byte-comparing the fairness tables across worker counts before
   reporting.  Speedup is wall(shards=1)/wall(shards=N) and is bounded
   by the machine's core count (recorded in the "cores" field): on a
   single-core host every row is a concurrency-overhead measurement,
   not a parallelism one.

   RLA_BENCH_SCALE_DURATION (simulated seconds, default 2) and
   RLA_BENCH_SCALE_FANOUT (default 22: 10648 receivers at depth 3)
   scale the run. *)

let env_value ~name ~default ~parse ~ok =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match parse s with
      | Some v when ok v -> v
      | _ ->
          Printf.eprintf
            "rla-bench-scale: %s=%S is invalid; using the default\n%!" name s;
          default)

let duration =
  env_value ~name:"RLA_BENCH_SCALE_DURATION" ~default:2.0
    ~parse:float_of_string_opt ~ok:(fun f -> f > 0.0)

let fanout =
  env_value ~name:"RLA_BENCH_SCALE_FANOUT" ~default:22
    ~parse:int_of_string_opt ~ok:(fun k -> k >= 2)

let warmup = duration /. 4.0
let seed = 1
let worker_counts = [ 1; 2; 4; 8 ]

let config ~workers =
  {
    Experiments.Scaling.default_sharded_config with
    Experiments.Scaling.fanout;
    workers;
    duration;
    warmup;
    seed;
  }

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_one workers =
  let result, wall_s =
    time (fun () -> Experiments.Scaling.run_sharded (config ~workers))
  in
  match result with
  | Error e -> failwith (Par.Scenario.error_to_string e)
  | Ok r -> (workers, wall_s, r)

let row ~base_wall (workers, wall_s, (r : Par.Scenario.result)) =
  let events = r.Par.Scenario.events_fired in
  let speedup = base_wall /. wall_s in
  Printf.printf
    "%-18s %8.2fs wall  %9d events  %10.0f ev/s  speedup %5.2f\n%!"
    (Printf.sprintf "shards%d" workers)
    wall_s events
    (float_of_int events /. wall_s)
    speedup;
  Runner.Json.Obj
    [
      ( "name",
        Runner.Json.String (Printf.sprintf "kary%dx3/shards%d" fanout workers)
      );
      ("workers", Runner.Json.Int workers);
      ("shards", Runner.Json.Int r.Par.Scenario.shards);
      ("receivers", Runner.Json.Int r.Par.Scenario.n_receivers);
      ("rounds", Runner.Json.Int r.Par.Scenario.rounds);
      ("lookahead_s", Runner.Json.Float r.Par.Scenario.lookahead);
      ("wall_s", Runner.Json.Float wall_s);
      ("events_fired", Runner.Json.Int events);
      ("events_per_s", Runner.Json.Float (float_of_int events /. wall_s));
      ("speedup", Runner.Json.Float speedup);
    ]

let () =
  let json_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_scale.json"
  in
  let runs = List.map run_one worker_counts in
  let base_wall =
    match runs with [] -> 1.0 | (_, w, _) :: _ -> w
  in
  let rows = List.map (row ~base_wall) runs in
  (match
     List.map (fun (_, _, r) -> r.Par.Scenario.fairness_table) runs
   with
  | [] -> ()
  | reference :: rest ->
      if not (List.for_all (String.equal reference) rest) then
        failwith
          "sharded results diverged across worker counts — determinism bug");
  Printf.printf "fairness tables byte-identical across %d worker counts\n%!"
    (List.length worker_counts);
  let fields recorded_at =
    (match recorded_at with
    | None -> []
    | Some t -> [ ("recorded_at", Runner.Json.Float t) ])
    @ [
        ("bench", Runner.Json.String "scale");
        ("duration_s", Runner.Json.Float duration);
        ("warmup_s", Runner.Json.Float warmup);
        ("seed", Runner.Json.Int seed);
        ("cores", Runner.Json.Int (Domain.recommended_domain_count ()));
        ("scenarios", Runner.Json.List rows);
      ]
  in
  let oc = open_out json_path in
  output_string oc (Runner.Json.to_string (Runner.Json.Obj (fields None)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  let history_path = Filename.remove_extension json_path ^ "_history.jsonl" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_path in
  output_string oc
    (Runner.Json.to_string
       (Runner.Json.Obj (fields (Some (Unix.gettimeofday ())))));
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended %s\n%!" history_path
