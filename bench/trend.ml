(* lint: allow-file wall-clock -- benchmark gate: the numbers it
   compares are host-machine events/s measurements by design *)

(* Perf trend gate (`make bench-trend`): compare the checked-in
   BENCH_perf.json against the best run recorded in
   BENCH_perf_history.jsonl and fail on a events/s regression beyond
   the tolerance (default 10%, RLA_BENCH_TREND_TOLERANCE overrides).

   Pure comparison — no simulation runs — so the gate is cheap enough
   for `make ci`.  Which history lines count as a baseline is decided
   by Runner.Trend.classify (same duration and seed; same core count
   when the document records one); the skip reasons printed here are
   Runner.Trend.skip_reason verbatim, and the unit suite asserts them.
   An empty or missing history passes (nothing to regress against yet).

   Usage: trend.exe [BENCH_perf.json [BENCH_perf_history.jsonl]] *)

let tolerance =
  match Sys.getenv_opt "RLA_BENCH_TREND_TOLERANCE" with
  | None -> 0.10
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0.0 && f < 1.0 -> f
      | _ ->
          Printf.eprintf
            "rla-bench-trend: RLA_BENCH_TREND_TOLERANCE=%S is not a fraction \
             in [0, 1); using 0.10\n\
             %!"
            s;
          0.10)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let parse_doc ~path text =
  match Runner.Json.of_string text with
  | exception Runner.Json.Parse_error e -> fail "rla-bench-trend: %s: %s" path e
  | json -> (
      match Runner.Trend.doc_of_json json with
      | Ok doc -> doc
      | Error e -> fail "rla-bench-trend: %s: %s" path e)

let () =
  let current_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_perf.json"
  in
  let history_path =
    if Array.length Sys.argv > 2 then Sys.argv.(2)
    else Filename.remove_extension current_path ^ "_history.jsonl"
  in
  if not (Sys.file_exists current_path) then
    fail "rla-bench-trend: %s not found (run `make bench-perf` first)"
      current_path;
  let machine_cores = Domain.recommended_domain_count () in
  let current = parse_doc ~path:current_path (String.trim (read_file current_path)) in
  let history_lines =
    if not (Sys.file_exists history_path) then []
    else
      String.split_on_char '\n' (read_file history_path)
      |> List.filter (fun l -> String.trim l <> "")
  in
  if history_lines = [] then begin
    Printf.printf
      "bench-trend: no history at %s — nothing to compare (run `make \
       bench-perf` to record a baseline)\n\
       %!"
      history_path;
    exit 0
  end;
  (* Best events/s per scenario over comparable history lines. *)
  let best : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let comparable = ref 0 in
  List.iteri
    (fun i line ->
      let doc = parse_doc ~path:history_path line in
      match Runner.Trend.classify ~current ~machine_cores doc with
      | Runner.Trend.Comparable ->
          incr comparable;
          List.iter
            (fun (name, eps) ->
              match Hashtbl.find_opt best name with
              | Some b when b >= eps -> ()
              | _ -> Hashtbl.replace best name eps)
            doc.Runner.Trend.scenarios
      | Runner.Trend.Skip_cores _ as c ->
          Printf.printf "bench-trend: skipping %s line %d — %s\n" history_path
            (i + 1)
            (Option.get (Runner.Trend.skip_reason c))
      | Runner.Trend.Skip_params -> ())
    history_lines;
  if !comparable = 0 then begin
    Printf.printf
      "bench-trend: %d history line(s) but none with duration %g / seed %g — \
       nothing to compare\n\
       %!"
      (List.length history_lines)
      current.Runner.Trend.duration current.Runner.Trend.seed;
    exit 0
  end;
  let failures = ref 0 in
  List.iter
    (fun (name, eps) ->
      match Hashtbl.find_opt best name with
      | None ->
          Printf.printf "  %-16s %10.0f ev/s  (new scenario, no history)\n" name
            eps
      | Some b ->
          let floor = b *. (1.0 -. tolerance) in
          let verdict = if eps < floor then "REGRESSION" else "ok" in
          if eps < floor then incr failures;
          Printf.printf
            "  %-16s %10.0f ev/s  best %10.0f  floor %10.0f  %s\n" name eps b
            floor verdict)
    current.Runner.Trend.scenarios;
  if !failures > 0 then
    fail
      "bench-trend: %d scenario(s) regressed more than %.0f%% below the best \
       recorded run"
      !failures (tolerance *. 100.0)
  else
    Printf.printf
      "bench-trend OK (%d scenario(s) within %.0f%% of best over %d \
       comparable run(s))\n\
       %!"
      (List.length current.Runner.Trend.scenarios)
      (tolerance *. 100.0) !comparable
