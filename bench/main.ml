(* lint: allow-file wall-clock -- benchmark harness: host wall time IS
   the measurement here, not simulation state *)
(* Benchmark harness: regenerates every table and figure of the paper
   (section 5 and the analytical figures), then times the simulator's
   hot paths with Bechamel.

   Durations are scaled down from the paper's 3000 s so the whole
   harness finishes in minutes; set RLA_BENCH_DURATION (seconds) to
   lengthen the runs — the shapes are stable from ~150 s up.

     dune exec bench/main.exe *)

let ppf = Format.std_formatter

(* Any positive duration is accepted; only unparsable or non-positive
   values fall back to the 150 s default, with a warning on stderr. *)
let duration =
  match Sys.getenv_opt "RLA_BENCH_DURATION" with
  | None -> 150.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ ->
          Printf.eprintf
            "rla-bench: RLA_BENCH_DURATION=%S is not a positive duration; \
             falling back to 150 s\n\
             %!"
            s;
          150.0)

(* Experiments discard a warm-up prefix (usually 100 s); for short
   custom durations shrink it so runs stay valid. *)
let warmup_for default_warmup =
  if default_warmup < duration then default_warmup else 0.4 *. duration

let jobs =
  match Sys.getenv_opt "RLA_BENCH_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ -> Runner.Pool.default_jobs ())
  | None -> Runner.Pool.default_jobs ()

let seed = 1

let section title =
  Format.fprintf ppf "@.========================================================@.";
  Format.fprintf ppf "== %s@." title;
  Format.fprintf ppf "========================================================@."

(* ------------------------------------------------------------------ *)
(* Paper reproduction                                                 *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "FIG4: drift diagram of two competing sessions (analytic)";
  let pipes = Analysis.Particle.uniform_pipes ~pipe:10.0 ~n:3 in
  Experiments.Report.print_drift_field ppf
    (Analysis.Particle.drift_field pipes ~x_max:10.0 ~y_max:10.0 ~step:1.0)

let fig5 () =
  section "FIG5: density of (cwnd1, cwnd2), Markov model";
  let pipes = Analysis.Particle.uniform_pipes ~pipe:40.0 ~n:27 in
  Experiments.Report.print_particle_run ppf
    (Analysis.Particle.simulate ~rng:(Sim.Rng.create seed) pipes ~steps:100_000 ())

let sharing_sweep gateway =
  Experiments.Sharing.sweep ~gateway ~case_indices:[ 1; 2; 3; 4; 5 ] ~duration
    ~warmup:(warmup_for 100.0) ~seeds:[ seed ] ~jobs ()

let fig7_and_8 () =
  section
    (Printf.sprintf "FIG7: RLA vs TCP, drop-tail gateways (%.0f s runs, %d jobs)"
       duration jobs);
  let t0 = Unix.gettimeofday () in
  let outcomes = sharing_sweep Experiments.Scenario.Droptail in
  let wall_s = Unix.gettimeofday () -. t0 in
  let results = Runner.Pool.values outcomes in
  Experiments.Report.print_sharing_table ppf
    ~title:"Figure 7 — drop-tail gateways" results;
  Runner.Report.pp_metrics_table ppf outcomes;
  let json =
    Runner.Report.sweep_json ~name:"fig7_droptail_sweep" ~jobs ~wall_s
      (fun o ->
        let r = o.Runner.Pool.value in
        [
          ("ratio", Runner.Json.Float r.Experiments.Sharing.ratio);
          ( "rla_send_rate",
            Runner.Json.Float
              r.Experiments.Sharing.rla.Rla.Sender.send_rate );
          ( "wtcp_send_rate",
            Runner.Json.Float
              r.Experiments.Sharing.wtcp.Tcp.Sender.send_rate );
          ( "essentially_fair",
            Runner.Json.Bool r.Experiments.Sharing.essentially_fair );
        ])
      outcomes
  in
  Runner.Report.write_file ~path:"BENCH_sweep.json" json;
  Format.fprintf ppf "wrote BENCH_sweep.json (%d runs, %.1f s wall)@."
    (List.length outcomes) wall_s;
  section "FIG8: congestion-signal statistics per branch";
  Experiments.Report.print_signal_table ppf results

let fig9 () =
  section
    (Printf.sprintf "FIG9: RLA vs TCP, RED gateways (%.0f s runs, %d jobs)"
       duration jobs);
  Experiments.Report.print_sharing_table ppf ~title:"Figure 9 — RED gateways"
    (Runner.Pool.values (sharing_sweep Experiments.Scenario.Red))

let fig10 () =
  section "FIG10: generalized RLA, heterogeneous RTTs";
  Experiments.Report.print_diff_rtt_table ppf
    (Runner.Pool.values
       (Experiments.Diff_rtt.sweep ~case_indices:[ 1; 2 ] ~duration
          ~warmup:(warmup_for 100.0) ~seed ~jobs ()))

let sec52 () =
  section "SEC5.2: two overlapping multicast sessions";
  match
    Runner.Pool.values
      (Experiments.Multi_session.run_seeds
         ~gateway:Experiments.Scenario.Droptail ~seeds:[ seed ] ~duration
         ~warmup:(warmup_for 100.0) ~jobs ())
  with
  | [ result ] -> Experiments.Report.print_multi_session ppf result
  | _ -> assert false

let sec31 () =
  section "SEC3.1: drop-tail buffer periods under TCP";
  let results =
    List.map
      (fun n_tcp ->
        let base = Experiments.Buffer_dynamics.default_config in
        Experiments.Buffer_dynamics.run
          {
            base with
            Experiments.Buffer_dynamics.n_tcp;
            mu_pkts = 100.0 *. float_of_int n_tcp;
            duration;
            warmup = warmup_for base.Experiments.Buffer_dynamics.warmup;
            seed;
          })
      [ 1; 2; 4; 8 ]
  in
  Experiments.Report.print_buffer_dynamics ppf results

let scaling () =
  section "SCALING: RLA throughput vs receiver count";
  let base = Experiments.Scaling.default_config in
  Experiments.Scaling.print ppf
    (Experiments.Scaling.run
       {
         base with
         duration;
         warmup = warmup_for base.Experiments.Scaling.warmup;
         seed;
       })

let shortflows () =
  section "SHORTFLOWS: short TCP flows vs long-lived backgrounds";
  let results =
    List.map
      (fun bg ->
        let base = Experiments.Short_flows.default_config bg in
        Experiments.Short_flows.run
          {
            base with
            Experiments.Short_flows.duration;
            warmup = warmup_for base.Experiments.Short_flows.warmup;
            seed;
          })
      [
        Experiments.Short_flows.Bg_none;
        Experiments.Short_flows.Bg_tcp;
        Experiments.Short_flows.Bg_rla;
        Experiments.Short_flows.Bg_cbr 220.0;
      ]
  in
  Experiments.Short_flows.print ppf results

let ecn () =
  section "ECN: RED marking instead of dropping (extension)";
  List.iter
    (fun case_index ->
      Experiments.Ecn.print ppf
        (Experiments.Ecn.run ~case_index ~duration ~seed ()))
    [ 1; 3 ]

let eq1 () =
  section "EQ1: analytical TCP window vs simulation";
  let base = Experiments.Validation.default_config in
  let config =
    {
      base with
      duration;
      warmup = warmup_for base.Experiments.Validation.warmup;
      seed;
    }
  in
  Experiments.Report.print_validation ppf (Experiments.Validation.run config)

let prop () =
  section "PROP: RLA window bounds (drift model + Monte-Carlo)";
  let rng = Sim.Rng.create seed in
  let rows =
    List.map
      (fun (n, ps) ->
        let w_model = Analysis.Rla_model.pa_window_independent ~ps in
        let w_mc = Analysis.Rla_model.simulate_window ~rng ~ps ~steps:200_000 in
        let p_max = Array.fold_left Stdlib.max 0.0 ps in
        let lo, hi = Analysis.Rla_model.proposition_bounds ~n ~p_max in
        (n, ps, w_model, w_mc, lo, hi))
      [
        (2, [| 0.01; 0.01 |]);
        (2, [| 0.02; 0.002 |]);
        (4, Array.make 4 0.02);
        (8, Array.make 8 0.01);
        (27, Array.make 27 0.01);
        (27, Array.append [| 0.03 |] (Array.make 26 0.003));
      ]
  in
  Experiments.Report.print_proposition_table ppf rows

let baseline () =
  section "BASELINE: rate-based schemes vs TCP (motivation, section 1)";
  Experiments.Report.print_baseline_matrix ppf
    (Experiments.Baseline_fairness.run_matrix ~duration ~seed ())

let ablations () =
  section "ABLATION: RLA design choices (case 3, drop-tail)";
  let ablation_duration = Stdlib.min duration 150.0 in
  let run ~title variants =
    Experiments.Report.print_ablation ppf ~title
      (Experiments.Ablation.run ~variants ~duration:ablation_duration ~seed ())
  in
  run ~title:"congestion-signal grouping window"
    (Experiments.Ablation.grouping_variants ());
  run ~title:"forced-cut horizon" (Experiments.Ablation.forced_cut_variants ());
  run ~title:"eta (troubled-receiver threshold)"
    (Experiments.Ablation.eta_variants ());
  run ~title:"phase-effect randomization"
    (Experiments.Ablation.phase_variants ());
  run ~title:"generalized pthresh exponent"
    (Experiments.Ablation.rtt_exponent_variants ());
  run ~title:"retransmission expiry"
    (Experiments.Ablation.rexmit_timeout_variants ());
  run ~title:"receiver ack jitter"
    (Experiments.Ablation.ack_jitter_variants ())

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the hot paths                          *)
(* ------------------------------------------------------------------ *)

let bench_heap () =
  let h = Sim.Heap.create () in
  Bechamel.Staged.stage (fun () ->
      for i = 0 to 99 do
        Sim.Heap.add h ~prio:(float_of_int ((i * 7919) mod 100)) i
      done;
      for _ = 0 to 99 do
        ignore (Sim.Heap.pop h)
      done)

let bench_rng () =
  let rng = Sim.Rng.create 1 in
  Bechamel.Staged.stage (fun () ->
      let acc = ref 0.0 in
      for _ = 1 to 100 do
        acc := !acc +. Sim.Rng.uniform rng
      done;
      ignore !acc)

let bench_red () =
  let red =
    Net.Red.create (Net.Red.default_params ~mean_pkt_time:0.001)
      ~rng:(Sim.Rng.create 1)
  in
  let t = ref 0.0 in
  Bechamel.Staged.stage (fun () ->
      for q = 0 to 99 do
        t := !t +. 0.001;
        ignore (Net.Red.decide red ~now:!t ~qlen:(q mod 20))
      done)

let bench_scoreboard () =
  Bechamel.Staged.stage (fun () ->
      let sb = Tcp.Scoreboard.create () in
      for _ = 1 to 100 do
        ignore (Tcp.Scoreboard.register_send sb)
      done;
      ignore (Tcp.Scoreboard.mark_sacked sb ~lo:40 ~hi:70);
      ignore (Tcp.Scoreboard.detect_losses sb ~dupthresh:3);
      ignore (Tcp.Scoreboard.advance_cum sb 100))

let bench_particle () =
  let pipes = Analysis.Particle.uniform_pipes ~pipe:40.0 ~n:27 in
  let rng = Sim.Rng.create 2 in
  Bechamel.Staged.stage (fun () ->
      ignore (Analysis.Particle.simulate ~rng pipes ~steps:1_000 ()))

let bench_tcp_sim () =
  Bechamel.Staged.stage (fun () ->
      let net = Net.Network.create ~seed:1 () in
      let a = Net.Node.id (Net.Network.add_node net) in
      let b = Net.Node.id (Net.Network.add_node net) in
      ignore
        (Net.Network.duplex net a b
           {
             Net.Link.bandwidth_bps = 800_000.0;
             prop_delay = 0.01;
             queue = Net.Queue_disc.Droptail;
             capacity = 20;
             phase_jitter = false;
           });
      Net.Network.install_routes net;
      ignore (Tcp.Sender.create ~net ~src:a ~dst:b ());
      Net.Network.run_until net 5.0)

let bench_rla_sim () =
  Bechamel.Staged.stage (fun () ->
      let net = Net.Network.create ~seed:1 () in
      let s = Net.Node.id (Net.Network.add_node net) in
      let hub = Net.Node.id (Net.Network.add_node net) in
      let leaves =
        List.init 3 (fun _ -> Net.Node.id (Net.Network.add_node net))
      in
      ignore
        (Net.Network.duplex net s hub
           {
             Net.Link.bandwidth_bps = 100e6;
             prop_delay = 0.005;
             queue = Net.Queue_disc.Droptail;
             capacity = 100;
             phase_jitter = false;
           });
      List.iter
        (fun leaf ->
          ignore
            (Net.Network.duplex net hub leaf
               {
                 Net.Link.bandwidth_bps = 1_600_000.0;
                 prop_delay = 0.02;
                 queue = Net.Queue_disc.Droptail;
                 capacity = 20;
                 phase_jitter = true;
               }))
        leaves;
      Net.Network.install_routes net;
      ignore (Rla.Sender.create ~net ~src:s ~receivers:leaves ());
      Net.Network.run_until net 5.0)

let microbench () =
  section "MICRO: Bechamel timings of the simulator hot paths";
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"heap add/pop x100" (bench_heap ());
        Test.make ~name:"rng uniform x100" (bench_rng ());
        Test.make ~name:"red decide x100" (bench_red ());
        Test.make ~name:"scoreboard cycle x100" (bench_scoreboard ());
        Test.make ~name:"particle 1k steps" (bench_particle ());
        Test.make ~name:"tcp 5s sim" (bench_tcp_sim ());
        Test.make ~name:"rla 3rcv 5s sim" (bench_rla_sim ());
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ time_ns ] ->
          Format.fprintf ppf "%-32s %12.0f ns/run@." name time_ns
      | _ -> Format.fprintf ppf "%-32s (no estimate)@." name)
    results

let () =
  let t0 = Sys.time () in
  fig4 ();
  fig5 ();
  fig7_and_8 ();
  fig9 ();
  fig10 ();
  sec52 ();
  sec31 ();
  scaling ();
  shortflows ();
  ecn ();
  eq1 ();
  prop ();
  baseline ();
  ablations ();
  microbench ();
  Format.fprintf ppf "@.total cpu time: %.1f s@." (Sys.time () -. t0)
